// Command montagesim runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	montagesim -exp list
//	montagesim -exp fig4
//	montagesim -exp all
//	montagesim -exp fig7 -format csv
//	montagesim -run 2deg -mode cleanup -procs 16 -billing provisioned
//	montagesim -run 1deg -json
//
// The -exp flag selects a canned experiment (one per paper table or
// figure) from the shared registry in internal/experiments -- the same
// list the reprosrv daemon serves under /v1/experiments, so the CLI and
// the API can never drift apart.  The -run flag instead simulates a
// single custom configuration; with -json it emits the exact result
// document POST /v1/run returns, byte for byte.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -exp list), or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	run := flag.String("run", "", "custom run: workflow preset 1deg, 2deg or 4deg")
	mode := flag.String("mode", "regular", "custom run: remote-io, regular or cleanup")
	procs := flag.Int("procs", 0, "custom run: provisioned processors (0 = full parallelism)")
	billing := flag.String("billing", "on-demand", "custom run: provisioned or on-demand")
	jsonOut := flag.Bool("json", false, "custom run: emit the machine-readable result document (same as the reprosrv API)")
	flag.Parse()

	// Ctrl-C cancels the whole experiment grid cooperatively: in-flight
	// simulations notice within a few events and the sweep drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmtArg := *format
	if *jsonOut {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "montagesim: -json applies to -run only (experiments take -format text|csv|markdown)")
			os.Exit(1)
		}
		fmtArg = "json"
	}
	if err := realMain(ctx, *exp, fmtArg, *run, *mode, *procs, *billing); err != nil {
		fmt.Fprintf(os.Stderr, "montagesim: %v\n", err)
		os.Exit(1)
	}
}

func realMain(ctx context.Context, exp, format, run, mode string, procs int, billing string) error {
	switch {
	case exp != "" && run != "":
		return fmt.Errorf("use either -exp or -run, not both")
	case exp != "":
		return runExperiment(ctx, exp, format, os.Stdout)
	case run != "":
		return runCustom(ctx, run, mode, procs, billing, format, os.Stdout)
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -exp or -run")
	}
}

func runExperiment(ctx context.Context, name, format string, w io.Writer) error {
	index := experiments.Registry()
	if name == "list" {
		tbl := report.New("Available experiments", "name", "description")
		for _, e := range index {
			tbl.MustAdd(e.Name, e.Description)
		}
		return tbl.WriteText(w)
	}
	var selected []experiments.Experiment
	if name == "all" {
		selected = index
	} else {
		e, ok := experiments.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -exp list)", name)
		}
		selected = []experiments.Experiment{e}
	}
	switch format {
	case "text", "csv", "markdown", "md":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or markdown)", format)
	}
	// Run the selected experiments through the sweep engine: every
	// figure computes concurrently, and each one's tables stream out in
	// index order as soon as all earlier experiments have printed.
	// Experiments nest their own grid pools inside this one; both levels
	// are small (<=20 experiments, <=9 points) and a shared token pool
	// across nested sweeps could deadlock, so each level is bounded by
	// GOMAXPROCS independently and the OS scheduler absorbs the
	// oversubscription.
	return experiments.Sweep[experiments.Experiment, []*report.Table]{
		Points: selected,
		Run: func(ctx context.Context, e experiments.Experiment) ([]*report.Table, error) {
			tables, err := e.Tables(ctx, experiments.Params{})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name, err)
			}
			return tables, nil
		},
	}.DoEach(ctx, func(tables []*report.Table) error {
		for _, t := range tables {
			var werr error
			switch format {
			case "text":
				werr = t.WriteText(w)
				fmt.Fprintln(w)
			case "csv":
				werr = t.WriteCSV(w)
			case "markdown", "md":
				werr = t.WriteMarkdown(w)
				fmt.Fprintln(w)
			}
			if werr != nil {
				return werr
			}
		}
		return nil
	})
}

func runCustom(ctx context.Context, preset, modeStr string, procs int, billingStr, format string, w io.Writer) error {
	req := repro.RunRequest{
		Workflow:   preset,
		Mode:       modeStr,
		Processors: procs,
		Billing:    billingStr,
	}
	spec, plan, err := req.Resolve()
	if err != nil {
		return err
	}
	wf, err := repro.GenerateCached(spec)
	if err != nil {
		return err
	}
	res, err := repro.RunContext(ctx, wf, plan)
	if err != nil {
		return err
	}
	if format == "json" {
		body, err := repro.NewRunDocument(res).Encode()
		if err != nil {
			return err
		}
		_, err = w.Write(body)
		return err
	}
	tbl := report.New(fmt.Sprintf("%s, %s mode, %s billing", spec.Name, plan.Mode, plan.Billing),
		"quantity", "value")
	mtr := res.Metrics
	tbl.MustAdd("tasks", fmt.Sprint(mtr.TasksRun))
	tbl.MustAdd("processors", fmt.Sprint(mtr.Processors))
	tbl.MustAdd("execution time", mtr.ExecTime.String())
	tbl.MustAdd("makespan", mtr.Makespan.String())
	tbl.MustAdd("data in", mtr.BytesIn.String())
	tbl.MustAdd("data out", mtr.BytesOut.String())
	tbl.MustAdd("storage GB-hours", report.F(mtr.GBHoursStorage(), 4))
	tbl.MustAdd("peak storage", mtr.PeakStorage.String())
	tbl.MustAdd("utilization", report.F(mtr.Utilization, 3))
	tbl.MustAdd("CPU cost", res.Cost.CPU.String())
	tbl.MustAdd("storage cost", res.Cost.Storage.String())
	tbl.MustAdd("transfer cost", res.Cost.Transfer().String())
	tbl.MustAdd("total cost", res.Cost.Total().String())
	return tbl.WriteText(w)
}
