// Command montagesim runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	montagesim -exp list
//	montagesim -exp fig4
//	montagesim -exp all
//	montagesim -exp fig7 -format csv
//	montagesim -run 2deg -mode cleanup -procs 16 -billing provisioned
//
// The -exp flag selects a canned experiment (one per paper table or
// figure); the -run flag instead simulates a single custom configuration
// and prints its metrics and cost.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/montage"
	"repro/internal/report"
	"repro/internal/units"
)

type tableSet struct {
	name   string
	desc   string
	tables func(context.Context) ([]*report.Table, error)
}

func experimentsIndex() []tableSet {
	return []tableSet{
		{"ccr-table", "§6.3 CCR table", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.CCRTable(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"fig4", "Q1 provisioning sweep, 1-degree", provisioningTables(experiments.Fig4)},
		{"fig5", "Q1 provisioning sweep, 2-degree", provisioningTables(experiments.Fig5)},
		{"fig6", "Q1 provisioning sweep, 4-degree", provisioningTables(experiments.Fig6)},
		{"fig7", "Q2a data-management comparison, 1-degree", dmTables(experiments.Fig7)},
		{"fig8", "Q2a data-management comparison, 2-degree", dmTables(experiments.Fig8)},
		{"fig9", "Q2a data-management comparison, 4-degree", dmTables(experiments.Fig9)},
		{"fig10", "CPU vs data-management cost summary", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.Fig10(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"fig11", "CCR sensitivity sweep", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.Fig11(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"q2b", "archive break-even analysis", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.Q2b(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"q3", "whole-sky campaign costing", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.Q3WholeSky(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"store", "store-vs-recompute horizons", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.Q3Store(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-granularity", "per-hour vs per-second billing", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationGranularity(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-plan", "provisioned vs on-demand charging", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationPlanComparison(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-startup", "VM startup cost (§8 extension)", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationVMStartup(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-outage", "storage outage impact (§8 extension)", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationOutage(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-scheduler", "list-scheduler policy comparison", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationScheduler(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-clustering", "horizontal task clustering", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationClustering(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"ablation-reliability", "task failure rate impact (§8 extension)", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.AblationReliability(ctx)
			return []*report.Table{r.Table()}, err
		}},
		{"overload", "cloud bursting under a request overload", func(ctx context.Context) ([]*report.Table, error) {
			r, err := experiments.Overload(ctx)
			return []*report.Table{r.Table()}, err
		}},
	}
}

func provisioningTables(fn func(context.Context) (experiments.ProvisioningFigure, error)) func(context.Context) ([]*report.Table, error) {
	return func(ctx context.Context) ([]*report.Table, error) {
		f, err := fn(ctx)
		if err != nil {
			return nil, err
		}
		return []*report.Table{f.CostTable(), f.TimeTable()}, nil
	}
}

func dmTables(fn func(context.Context) (experiments.DataManagementFigure, error)) func(context.Context) ([]*report.Table, error) {
	return func(ctx context.Context) ([]*report.Table, error) {
		f, err := fn(ctx)
		if err != nil {
			return nil, err
		}
		return []*report.Table{f.StorageTable(), f.TransferTable(), f.CostTable()}, nil
	}
}

func main() {
	exp := flag.String("exp", "", "experiment to run (see -exp list), or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	run := flag.String("run", "", "custom run: workflow preset 1deg, 2deg or 4deg")
	mode := flag.String("mode", "regular", "custom run: remote-io, regular or cleanup")
	procs := flag.Int("procs", 0, "custom run: provisioned processors (0 = full parallelism)")
	billing := flag.String("billing", "on-demand", "custom run: provisioned or on-demand")
	flag.Parse()

	// Ctrl-C cancels the whole experiment grid cooperatively: in-flight
	// simulations notice within a few events and the sweep drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := realMain(ctx, *exp, *format, *run, *mode, *procs, *billing); err != nil {
		fmt.Fprintf(os.Stderr, "montagesim: %v\n", err)
		os.Exit(1)
	}
}

func realMain(ctx context.Context, exp, format, run, mode string, procs int, billing string) error {
	switch {
	case exp != "" && run != "":
		return fmt.Errorf("use either -exp or -run, not both")
	case exp != "":
		return runExperiment(ctx, exp, format, os.Stdout)
	case run != "":
		return runCustom(ctx, run, mode, procs, billing, format, os.Stdout)
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -exp or -run")
	}
}

func runExperiment(ctx context.Context, name, format string, w io.Writer) error {
	index := experimentsIndex()
	if name == "list" {
		tbl := report.New("Available experiments", "name", "description")
		for _, e := range index {
			tbl.MustAdd(e.name, e.desc)
		}
		return tbl.WriteText(w)
	}
	var selected []tableSet
	if name == "all" {
		selected = index
	} else {
		for _, e := range index {
			if e.name == name {
				selected = []tableSet{e}
				break
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown experiment %q (try -exp list)", name)
		}
	}
	switch format {
	case "text", "csv", "markdown", "md":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or markdown)", format)
	}
	// Run the selected experiments through the sweep engine: every
	// figure computes concurrently, and each one's tables stream out in
	// index order as soon as all earlier experiments have printed.
	// Experiments nest their own grid pools inside this one; both levels
	// are small (<=20 experiments, <=9 points) and a shared token pool
	// across nested sweeps could deadlock, so each level is bounded by
	// GOMAXPROCS independently and the OS scheduler absorbs the
	// oversubscription.
	return experiments.Sweep[tableSet, []*report.Table]{
		Points: selected,
		Run: func(ctx context.Context, e tableSet) ([]*report.Table, error) {
			tables, err := e.tables(ctx)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.name, err)
			}
			return tables, nil
		},
	}.DoEach(ctx, func(tables []*report.Table) error {
		for _, t := range tables {
			var werr error
			switch format {
			case "text":
				werr = t.WriteText(w)
				fmt.Fprintln(w)
			case "csv":
				werr = t.WriteCSV(w)
			case "markdown", "md":
				werr = t.WriteMarkdown(w)
				fmt.Fprintln(w)
			}
			if werr != nil {
				return werr
			}
		}
		return nil
	})
}

func runCustom(ctx context.Context, preset, modeStr string, procs int, billingStr, format string, w io.Writer) error {
	var spec montage.Spec
	switch strings.ToLower(preset) {
	case "1deg":
		spec = montage.OneDegree()
	case "2deg":
		spec = montage.TwoDegree()
	case "4deg":
		spec = montage.FourDegree()
	default:
		return fmt.Errorf("unknown preset %q (want 1deg, 2deg or 4deg)", preset)
	}
	m, err := datamgmt.ParseMode(modeStr)
	if err != nil {
		return err
	}
	plan := core.DefaultPlan()
	plan.Mode = m
	plan.Processors = procs
	switch billingStr {
	case "provisioned":
		plan.Billing = core.Provisioned
	case "on-demand", "ondemand":
		plan.Billing = core.OnDemand
	default:
		return fmt.Errorf("unknown billing %q (want provisioned or on-demand)", billingStr)
	}
	wf, err := montage.Generate(spec)
	if err != nil {
		return err
	}
	res, err := core.RunContext(ctx, wf, plan)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Metrics exec.Metrics
			Cost    cost.Breakdown
			Total   units.Money
		}{res.Metrics, res.Cost, res.Cost.Total()})
	}
	tbl := report.New(fmt.Sprintf("%s, %s mode, %s billing", spec.Name, m, plan.Billing),
		"quantity", "value")
	mtr := res.Metrics
	tbl.MustAdd("tasks", fmt.Sprint(mtr.TasksRun))
	tbl.MustAdd("processors", fmt.Sprint(mtr.Processors))
	tbl.MustAdd("execution time", mtr.ExecTime.String())
	tbl.MustAdd("makespan", mtr.Makespan.String())
	tbl.MustAdd("data in", mtr.BytesIn.String())
	tbl.MustAdd("data out", mtr.BytesOut.String())
	tbl.MustAdd("storage GB-hours", report.F(mtr.GBHoursStorage(), 4))
	tbl.MustAdd("peak storage", mtr.PeakStorage.String())
	tbl.MustAdd("utilization", report.F(mtr.Utilization, 3))
	tbl.MustAdd("CPU cost", res.Cost.CPU.String())
	tbl.MustAdd("storage cost", res.Cost.Storage.String())
	tbl.MustAdd("transfer cost", res.Cost.Transfer().String())
	tbl.MustAdd("total cost", res.Cost.Total().String())
	return tbl.WriteText(w)
}
