// Command montagesim runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	montagesim -exp list
//	montagesim -exp fig4
//	montagesim -exp all
//	montagesim -exp fig7 -format csv
//	montagesim -run 2deg -mode cleanup -procs 16 -billing provisioned
//	montagesim -run 1deg -json
//	montagesim -run 1deg -procs 16 -spot-rate 1.5 -spot-discount 0.65 \
//	    -spot-ondemand 4 -spot-ckpt 300 -spot-ckpt-overhead 10 -json
//	montagesim -run 1deg -procs 16 -spot-rate 1 -spot-ondemand 4 \
//	    -spot-ckpt 300 -placement heft -victim cost-aware
//	montagesim -scenario scenario.json
//	montagesim -scenario scenario.json -csv
//	montagesim -scenario sweep.json        # {scenario, axes} document
//	montagesim -scenario - < scenario.json
//
// The -exp flag selects a canned experiment (one per paper table or
// figure) from the shared registry in internal/experiments -- the same
// list the reprosrv daemon serves under /v1/experiments, so the CLI and
// the API can never drift apart.  The -run flag simulates a single
// custom configuration, including seeded spot scenarios and mixed
// fleets via the -spot-* flags; with -json it emits the exact result
// document POST /v1/run returns, byte for byte.  The -placement,
// -victim, -checkpoint-policy and -pool-sizing flags select named
// scheduling/recovery policies for the custom run (v2 scenario
// documents select them via their policies section instead).
//
// The -scenario flag is the v2 path: it reads one declarative
// ScenarioSpec document (the same JSON POST /v2/run accepts) and runs
// it; with -json it emits the exact v2 result document the server
// returns.  If the document is a sweep request -- a {"scenario": ...,
// "axes": [{"axis": <any scenario path>, "values": [...]}]} pair -- the
// grid streams to stdout as NDJSON envelopes byte-identical to a
// POST /v2/sweep response.  With -csv the single run (or the whole
// sweep grid) renders as one CSV table instead.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/wire"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (see -exp list), or 'all'")
	format := flag.String("format", "text", "output format: text or csv")
	run := flag.String("run", "", "custom run: workflow preset 1deg, 2deg or 4deg")
	scenario := flag.String("scenario", "", "path to a v2 scenario JSON document, or a {scenario, axes} sweep document ('-' reads stdin)")
	mode := flag.String("mode", "regular", "custom run: remote-io, regular or cleanup")
	procs := flag.Int("procs", 0, "custom run: provisioned processors (0 = full parallelism)")
	billing := flag.String("billing", "on-demand", "custom run: provisioned or on-demand")
	jsonOut := flag.Bool("json", false, "custom run: emit the machine-readable result document (same as the reprosrv API)")
	spotRate := flag.Float64("spot-rate", 0, "custom run: per-instance spot reclaims per hour (0 = reliable capacity)")
	spotWarning := flag.Float64("spot-warning", 0, "custom run: spot reclaim warning seconds (0 = 120 when reclaims are on)")
	spotDown := flag.Float64("spot-down", 0, "custom run: spot downtime seconds (0 = 600 when reclaims are on)")
	spotSeed := flag.Int64("spot-seed", 0, "custom run: revocation-schedule seed")
	spotDiscount := flag.Float64("spot-discount", 0, "custom run: spot CPU discount fraction in [0,1)")
	spotOnDemand := flag.Int("spot-ondemand", 0, "custom run: reliable on-demand processors of a mixed fleet")
	spotCkpt := flag.Float64("spot-ckpt", 0, "custom run: checkpoint interval seconds (0 = restart preempted tasks from scratch)")
	spotCkptOverhead := flag.Float64("spot-ckpt-overhead", 0, "custom run: wall-clock seconds per checkpoint write")
	placement := flag.String("placement", "", "custom run: reliable-slot placement policy (rank, heft, fifo)")
	victim := flag.String("victim", "", "custom run: spot reclaim victim policy (deterministic, cost-aware, least-progress)")
	ckptPolicy := flag.String("checkpoint-policy", "", "custom run: checkpoint trigger policy (interval, adaptive, risk)")
	poolSizing := flag.String("pool-sizing", "", "custom run: reliable/spot pool-sizing policy (static, quarter, half)")
	csvOut := flag.Bool("csv", false, "scenario run: emit the result table (or sweep grid table) as CSV")
	tracePath := flag.String("trace", "", "custom or scenario run: write the flight-recorder timeline as a Chrome trace-event file (open in Perfetto)")
	flag.Parse()

	// Ctrl-C cancels the whole experiment grid cooperatively: in-flight
	// simulations notice within a few events and the sweep drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmtArg := *format
	if *jsonOut {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "montagesim: -json applies to -run and -scenario only (experiments take -format text|csv|markdown)")
			os.Exit(1)
		}
		fmtArg = "json"
	}
	if *csvOut {
		if *scenario == "" || *jsonOut {
			fmt.Fprintln(os.Stderr, "montagesim: -csv applies to -scenario (and excludes -json)")
			os.Exit(1)
		}
		fmtArg = "csv"
	}
	bundle := policy.Bundle{
		Placement:  *placement,
		Victim:     *victim,
		Checkpoint: *ckptPolicy,
		Sizing:     *poolSizing,
	}
	if bundle != (policy.Bundle{}) && *run == "" {
		fmt.Fprintln(os.Stderr, "montagesim: policy flags apply to -run (scenario documents carry their own policies section)")
		os.Exit(1)
	}
	req := repro.RunRequest{
		Workflow:   *run,
		Mode:       *mode,
		Processors: *procs,
		Billing:    *billing,
	}
	spot := repro.SpotRequest{
		RatePerHour:               *spotRate,
		WarningSeconds:            *spotWarning,
		DowntimeSeconds:           *spotDown,
		Seed:                      *spotSeed,
		Discount:                  *spotDiscount,
		OnDemandProcessors:        *spotOnDemand,
		CheckpointSeconds:         *spotCkpt,
		CheckpointOverheadSeconds: *spotCkptOverhead,
	}
	if spot != (repro.SpotRequest{}) {
		req.Spot = &spot
	}
	if err := realMain(ctx, *exp, fmtArg, *scenario, req, bundle, *tracePath); err != nil {
		fmt.Fprintf(os.Stderr, "montagesim: %v\n", err)
		os.Exit(1)
	}
}

func realMain(ctx context.Context, exp, format, scenarioPath string, req repro.RunRequest, bundle policy.Bundle, tracePath string) error {
	selected := 0
	for _, set := range []bool{exp != "", req.Workflow != "", scenarioPath != ""} {
		if set {
			selected++
		}
	}
	if tracePath != "" && (exp != "" || selected == 0) {
		return fmt.Errorf("-trace applies to single -run or -scenario runs")
	}
	switch {
	case selected > 1:
		return fmt.Errorf("use exactly one of -exp, -run or -scenario")
	case exp != "":
		return runExperiment(ctx, exp, format, os.Stdout)
	case req.Workflow != "":
		return runCustom(ctx, req, bundle, format, tracePath, os.Stdout)
	case scenarioPath != "":
		return runScenario(ctx, scenarioPath, format, tracePath, os.Stdout)
	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -exp, -run or -scenario")
	}
}

func runExperiment(ctx context.Context, name, format string, w io.Writer) error {
	index := experiments.Registry()
	if name == "list" {
		tbl := report.New("Available experiments", "name", "description")
		for _, e := range index {
			tbl.MustAdd(e.Name, e.Description)
		}
		return tbl.WriteText(w)
	}
	var selected []experiments.Experiment
	if name == "all" {
		selected = index
	} else {
		e, ok := experiments.Lookup(name)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -exp list)", name)
		}
		selected = []experiments.Experiment{e}
	}
	switch format {
	case "text", "csv", "markdown", "md":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or markdown)", format)
	}
	// Run the selected experiments through the sweep engine: every
	// figure computes concurrently, and each one's tables stream out in
	// index order as soon as all earlier experiments have printed.
	// Experiments nest their own grid pools inside this one; both levels
	// are small (<=20 experiments, <=9 points) and a shared token pool
	// across nested sweeps could deadlock, so each level is bounded by
	// GOMAXPROCS independently and the OS scheduler absorbs the
	// oversubscription.
	return experiments.Sweep[experiments.Experiment, []*report.Table]{
		Points: selected,
		Run: func(ctx context.Context, e experiments.Experiment) ([]*report.Table, error) {
			tables, err := e.Tables(ctx, experiments.Params{})
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name, err)
			}
			return tables, nil
		},
	}.DoEach(ctx, func(tables []*report.Table) error {
		for _, t := range tables {
			var werr error
			switch format {
			case "text":
				werr = t.WriteText(w)
				fmt.Fprintln(w)
			case "csv":
				werr = t.WriteCSV(w)
			case "markdown", "md":
				werr = t.WriteMarkdown(w)
				fmt.Fprintln(w)
			}
			if werr != nil {
				return werr
			}
		}
		return nil
	})
}

// runCustom resolves a v1 request and runs it.  The policy bundle is
// applied to the resolved plan -- the v1 wire shape is frozen, so policy
// selection is a CLI-level knob here and a scenario section on v2.
func runCustom(ctx context.Context, req repro.RunRequest, bundle policy.Bundle, format, tracePath string, w io.Writer) error {
	spec, plan, err := req.Resolve()
	if err != nil {
		return err
	}
	plan.Policies = bundle
	rec := maybeRecorder(&plan, tracePath)
	res, err := simulate(ctx, spec, plan)
	if err != nil {
		return err
	}
	if err := maybeWriteTrace(tracePath, rec); err != nil {
		return err
	}
	if format == "json" {
		body, err := repro.NewRunDocument(res).Encode()
		if err != nil {
			return err
		}
		_, err = w.Write(body)
		return err
	}
	return writeRunTable(spec, res, w)
}

// runScenario runs one v2 document: a plain scenario (single run) or a
// {scenario, axes} sweep request (NDJSON grid stream, byte-identical to
// a POST /v2/sweep response).
func runScenario(ctx context.Context, path, format, tracePath string, w io.Writer) error {
	raw, err := readInput(path)
	if err != nil {
		return err
	}
	// Sniff the document kind before the strict decode: a sweep request
	// nests the scenario under "scenario" and adds "axes".
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("scenario document: %w", err)
	}
	if _, ok := probe["axes"]; ok {
		if tracePath != "" {
			return fmt.Errorf("-trace applies to single runs, not sweeps")
		}
		var req wire.SweepRequest
		if err := wire.DecodeStrict(bytes.NewReader(raw), &req); err != nil {
			return err
		}
		if format == "csv" {
			return writeGridCSV(ctx, req, w)
		}
		return streamGrid(ctx, req, w)
	}
	var sc wire.Scenario
	if err := wire.DecodeStrict(bytes.NewReader(raw), &sc); err != nil {
		return err
	}
	spec, plan, err := sc.Resolve()
	if err != nil {
		return err
	}
	// The scenario's trace knob and the -trace flag both arm the
	// recorder; the flag additionally picks the Chrome-trace output.
	if sc.Trace || tracePath != "" {
		plan.Recorder = obs.NewRecorder(0)
	}
	res, err := simulate(ctx, spec, plan)
	if err != nil {
		return err
	}
	if err := maybeWriteTrace(tracePath, plan.Recorder); err != nil {
		return err
	}
	if format == "json" {
		var body []byte
		if sc.Trace {
			body, err = wire.NewTracedRunDocumentV2(spec, res, plan.Recorder).Encode()
		} else {
			body, err = wire.NewRunDocumentV2(spec, res).Encode()
		}
		if err != nil {
			return err
		}
		_, err = w.Write(body)
		return err
	}
	if format == "csv" {
		return buildRunTable(spec, res).WriteCSV(w)
	}
	return writeRunTable(spec, res, w)
}

// writeGridCSV runs the whole sweep grid and renders it as one CSV
// table (one column per axis plus the headline outcomes), the batch
// counterpart of the NDJSON stream.
func writeGridCSV(ctx context.Context, req wire.SweepRequest, w io.Writer) error {
	rows, err := experiments.ScenarioGrid(ctx, req)
	if err != nil {
		return err
	}
	tbl, err := experiments.GridTable(req, rows)
	if err != nil {
		return err
	}
	return tbl.WriteCSV(w)
}

// streamGrid expands and runs a sweep request's grid on the concurrent
// sweep engine, emitting the same NDJSON envelope stream the server's
// /v2/sweep endpoint produces: rows in grid order, then a done (or
// error) sentinel.
func streamGrid(ctx context.Context, req wire.SweepRequest, w io.Writer) error {
	grid, err := req.ResolveGrid()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	rows := 0
	err = sweep.Stream(ctx, 0, grid,
		func(ctx context.Context, i int, p wire.ResolvedPoint) (wire.RunDocumentV2, error) {
			res, err := simulate(ctx, p.Spec, p.Plan)
			if err != nil {
				return wire.RunDocumentV2{}, err
			}
			return wire.NewRunDocumentV2(p.Spec, res), nil
		},
		func(i int, doc wire.RunDocumentV2) error {
			row := wire.SweepRow{Index: i, RunDocumentV2: doc}
			rows++
			return enc.Encode(wire.SweepEnvelope{Row: &row})
		})
	if err != nil {
		if rows > 0 {
			enc.Encode(wire.SweepEnvelope{Error: err.Error()}) //nolint:errcheck
		}
		return err
	}
	return enc.Encode(wire.SweepEnvelope{Done: &wire.SweepDone{Rows: rows}})
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// maybeRecorder arms the plan's flight recorder when a trace output was
// requested, returning it (nil otherwise).
func maybeRecorder(plan *repro.Plan, tracePath string) *obs.Recorder {
	if tracePath == "" {
		return nil
	}
	plan.Recorder = obs.NewRecorder(0)
	return plan.Recorder
}

// maybeWriteTrace renders the recorder's timeline as a Chrome
// trace-event file (viewable in Perfetto or chrome://tracing).
func maybeWriteTrace(tracePath string, rec *obs.Recorder) error {
	if tracePath == "" || rec == nil {
		return nil
	}
	body, err := obs.ChromeTrace(rec.Events())
	if err != nil {
		return err
	}
	if err := os.WriteFile(tracePath, body, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "montagesim: wrote %d trace events to %s\n", rec.Len(), tracePath)
	return nil
}

// simulate generates (through the process-wide workflow cache) and runs
// one resolved scenario.
func simulate(ctx context.Context, spec repro.Spec, plan repro.Plan) (repro.Result, error) {
	wf, err := repro.GenerateCached(spec)
	if err != nil {
		return repro.Result{}, err
	}
	return repro.RunContext(ctx, wf, plan)
}

func writeRunTable(spec repro.Spec, res repro.Result, w io.Writer) error {
	return buildRunTable(spec, res).WriteText(w)
}

func buildRunTable(spec repro.Spec, res repro.Result) *report.Table {
	plan := res.Plan
	tbl := report.New(fmt.Sprintf("%s, %s mode, %s billing", spec.Name, plan.Mode, plan.Billing),
		"quantity", "value")
	mtr := res.Metrics
	tbl.MustAdd("tasks", fmt.Sprint(mtr.TasksRun))
	tbl.MustAdd("processors", fmt.Sprint(mtr.Processors))
	tbl.MustAdd("execution time", mtr.ExecTime.String())
	tbl.MustAdd("makespan", mtr.Makespan.String())
	tbl.MustAdd("data in", mtr.BytesIn.String())
	tbl.MustAdd("data out", mtr.BytesOut.String())
	tbl.MustAdd("storage GB-hours", report.F(mtr.GBHoursStorage(), 4))
	tbl.MustAdd("peak storage", mtr.PeakStorage.String())
	tbl.MustAdd("utilization", report.F(mtr.Utilization, 3))
	if plan.Spot.Enabled() {
		tbl.MustAdd("on-demand procs", fmt.Sprint(mtr.OnDemandProcessors))
		tbl.MustAdd("spot procs", fmt.Sprint(mtr.Processors-mtr.OnDemandProcessors))
		tbl.MustAdd("preempted", fmt.Sprint(mtr.Preempted))
		tbl.MustAdd("wasted CPU s", report.F(mtr.WastedCPUSeconds, 0))
		tbl.MustAdd("checkpoints", fmt.Sprint(mtr.Checkpoints))
	}
	tbl.MustAdd("CPU cost", res.Cost.CPU.String())
	tbl.MustAdd("storage cost", res.Cost.Storage.String())
	tbl.MustAdd("transfer cost", res.Cost.Transfer().String())
	tbl.MustAdd("total cost", res.Cost.Total().String())
	return tbl
}
