// Command wfinfo inspects a workflow: given a DAX XML file (or a preset
// name), it prints the structural statistics the paper reports for its
// workloads -- task counts by type, level widths, data volumes, CCR --
// and the concrete-plan summary (stage-in/out and cleanup job counts).
//
// Usage:
//
//	wfinfo -preset 2deg
//	daxgen -preset 4deg | wfinfo
//	wfinfo -dax montage-1deg.xml -mode cleanup
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/dax"
	"repro/internal/montage"
	"repro/internal/planner"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	preset := flag.String("preset", "", "preset workflow: 1deg, 2deg or 4deg")
	daxPath := flag.String("dax", "", "DAX XML file to inspect (default stdin when no preset)")
	modeStr := flag.String("mode", "cleanup", "planning mode: remote-io, regular or cleanup")
	flag.Parse()

	if err := run(*preset, *daxPath, *modeStr, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "wfinfo: %v\n", err)
		os.Exit(1)
	}
}

func load(preset, daxPath string) (*dag.Workflow, error) {
	switch {
	case preset != "" && daxPath != "":
		return nil, fmt.Errorf("use either -preset or -dax, not both")
	case preset == "1deg":
		return montage.Generate(montage.OneDegree())
	case preset == "2deg":
		return montage.Generate(montage.TwoDegree())
	case preset == "4deg":
		return montage.Generate(montage.FourDegree())
	case preset != "":
		return nil, fmt.Errorf("unknown preset %q (want 1deg, 2deg or 4deg)", preset)
	case daxPath != "":
		f, err := os.Open(daxPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dax.Read(f)
	default:
		return dax.Read(os.Stdin)
	}
}

func run(preset, daxPath, modeStr string, w io.Writer) error {
	wf, err := load(preset, daxPath)
	if err != nil {
		return err
	}
	mode, err := datamgmt.ParseMode(modeStr)
	if err != nil {
		return err
	}

	summary := report.New(fmt.Sprintf("Workflow %s", wf.Name), "quantity", "value")
	summary.MustAdd("tasks", fmt.Sprint(wf.NumTasks()))
	summary.MustAdd("files", fmt.Sprint(wf.NumFiles()))
	summary.MustAdd("levels", fmt.Sprint(wf.MaxLevel()))
	summary.MustAdd("max parallelism", fmt.Sprint(wf.MaxParallelism()))
	summary.MustAdd("total CPU time", wf.TotalRuntime().String())
	summary.MustAdd("critical path", wf.CriticalPath().String())
	summary.MustAdd("total file bytes", wf.TotalFileBytes().String())
	summary.MustAdd("external inputs", fmt.Sprintf("%d (%v)", len(wf.ExternalInputs()), wf.InputBytes()))
	summary.MustAdd("outputs", fmt.Sprintf("%d (%v)", len(wf.OutputFiles()), wf.OutputBytes()))
	summary.MustAdd("CCR @ 10 Mbps", report.F(wf.CCR(units.Mbps(10)), 4))
	if err := summary.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	byType := map[string]int{}
	byTypeCPU := map[string]units.Duration{}
	for _, t := range wf.Tasks() {
		byType[t.Type]++
		byTypeCPU[t.Type] += t.Runtime
	}
	var types []string
	for typ := range byType {
		types = append(types, typ)
	}
	sort.Strings(types)
	typeTable := report.New("Tasks by type", "type", "count", "cpu-time", "cpu-share")
	total := wf.TotalRuntime().Seconds()
	for _, typ := range types {
		typeTable.MustAdd(typ, fmt.Sprint(byType[typ]), byTypeCPU[typ].String(),
			fmt.Sprintf("%.1f%%", 100*byTypeCPU[typ].Seconds()/total))
	}
	if err := typeTable.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	levelTable := report.New("Level structure", "level", "width", "types")
	for lv := 1; lv <= wf.MaxLevel(); lv++ {
		tasks := wf.TasksAtLevel(lv)
		typeSet := map[string]bool{}
		for _, t := range tasks {
			typeSet[t.Type] = true
		}
		var names []string
		for typ := range typeSet {
			names = append(names, typ)
		}
		sort.Strings(names)
		levelTable.MustAdd(fmt.Sprint(lv), fmt.Sprint(len(tasks)), fmt.Sprint(names))
	}
	if err := levelTable.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	plan, err := planner.Build(wf, planner.Options{Mode: mode})
	if err != nil {
		return err
	}
	counts := plan.CountByKind()
	planTable := report.New(fmt.Sprintf("Concrete plan (%v mode)", mode), "jobs", "count", "bytes")
	planTable.MustAdd("stage-in", fmt.Sprint(counts[planner.StageIn]), plan.TransferBytes(planner.StageIn).String())
	planTable.MustAdd("compute", fmt.Sprint(counts[planner.Compute]), "-")
	planTable.MustAdd("cleanup", fmt.Sprint(counts[planner.CleanupJob]), "-")
	planTable.MustAdd("stage-out", fmt.Sprint(counts[planner.StageOut]), plan.TransferBytes(planner.StageOut).String())
	return planTable.WriteText(w)
}
