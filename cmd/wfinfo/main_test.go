package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dax"
	"repro/internal/montage"
)

func TestRunPreset(t *testing.T) {
	var b strings.Builder
	if err := run("1deg", "", "cleanup", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"montage-1deg", "mProject", "mAdd", "Level structure",
		"Concrete plan (cleanup mode)", "stage-in", "cleanup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunDAXFile(t *testing.T) {
	w, err := montage.Generate(montage.TwoDegree())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wf.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dax.Write(f, w); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var b strings.Builder
	if err := run("", path, "regular", &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "montage-2deg") {
		t.Error("output missing workflow name")
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run("1deg", "also.xml", "regular", &b); err == nil {
		t.Error("both preset and dax accepted")
	}
	if err := run("9deg", "", "regular", &b); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run("1deg", "", "sideways", &b); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run("", "/nonexistent.xml", "regular", &b); err == nil {
		t.Error("missing file accepted")
	}
}
