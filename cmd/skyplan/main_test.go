package main

import "testing"

func TestRunPaperTilings(t *testing.T) {
	// The 4-degree whole-sky default must run end to end.
	if err := run(4, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomCount(t *testing.T) {
	if err := run(2, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	// No canonical whole-sky count for 3-degree tiles.
	if err := run(3, 0); err == nil {
		t.Error("missing mosaic count accepted")
	}
}
