// Command skyplan answers the paper's Question 3 interactively: what
// does mosaicking the whole sky cost at a given tile size, and how long
// is a generated mosaic worth storing instead of recomputing?
//
// Usage:
//
//	skyplan                 # the paper's 4-degree tiling (3,900 mosaics)
//	skyplan -degrees 6      # the 6-degree alternative (1,734 mosaics)
//	skyplan -degrees 2 -mosaics 15000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/montage"
	"repro/internal/report"
)

func main() {
	degrees := flag.Float64("degrees", 4, "mosaic tile size in degrees")
	mosaics := flag.Int("mosaics", 0, "number of mosaics (0 = the paper's whole-sky count for 4 or 6 degrees)")
	flag.Parse()

	if err := run(*degrees, *mosaics); err != nil {
		fmt.Fprintf(os.Stderr, "skyplan: %v\n", err)
		os.Exit(1)
	}
}

func run(degrees float64, mosaics int) error {
	var spec montage.Spec
	switch degrees {
	case 1:
		spec = montage.OneDegree()
	case 2:
		spec = montage.TwoDegree()
	case 4:
		spec = montage.FourDegree()
	default:
		spec = montage.FromDegrees(degrees, 1)
	}
	if mosaics == 0 {
		switch degrees {
		case 4:
			mosaics = archive.WholeSky4DegMosaics
		case 6:
			mosaics = archive.WholeSky6DegMosaics
		default:
			return fmt.Errorf("no whole-sky count for %.3g-degree tiles; pass -mosaics", degrees)
		}
	}

	wf, err := montage.Generate(spec)
	if err != nil {
		return err
	}
	res, err := core.Run(wf, core.DefaultPlan())
	if err != nil {
		return err
	}
	camp, err := archive.ComputeSkyCampaign(res.Cost, mosaics)
	if err != nil {
		return err
	}
	horizon, err := archive.ComputeStorageHorizon(cost.Amazon2008(), wf.OutputBytes(), res.Cost.CPU)
	if err != nil {
		return err
	}

	tbl := report.New(fmt.Sprintf("Sky campaign with %.3g-degree mosaics (%s)", degrees, spec.Name),
		"quantity", "value")
	tbl.MustAdd("mosaics", fmt.Sprint(camp.Mosaics))
	tbl.MustAdd("cost per mosaic", camp.CostPerMosaic.String())
	tbl.MustAdd("cost per mosaic (inputs archived)", camp.CostPerMosaicArchived.String())
	tbl.MustAdd("campaign total", camp.TotalCost.String())
	tbl.MustAdd("campaign total (inputs archived)", camp.TotalCostArchived.String())
	tbl.MustAdd("mosaic size", horizon.ProductBytes.String())
	tbl.MustAdd("storage per mosaic per month", horizon.MonthlyCost.String())
	tbl.MustAdd("worth storing for", fmt.Sprintf("%.1f months", horizon.Months))
	return tbl.WriteText(os.Stdout)
}
