// Command reprosrv serves the Montage cost simulator as a long-running
// HTTP daemon: the paper's Figure-2 mosaic portal, made literal.
//
// Usage:
//
//	reprosrv -addr 127.0.0.1:8080
//	reprosrv -addr 127.0.0.1:0 -workers 8 -queue 128 -cache 2048
//	reprosrv -addr 127.0.0.1:8080 -debug-addr 127.0.0.1:6060
//
// Endpoints (see internal/server): POST /v1/run, POST /v1/sweep (NDJSON
// stream), GET /v1/experiments, GET /v1/experiments/{name},
// GET /v1/advisor, GET /healthz, GET /metrics.
//
// Every request is logged as one structured line (request ID, endpoint,
// status, latency) via log/slog; -quiet drops them.  -debug-addr serves
// net/http/pprof on a separate listener, kept off the public mux so
// profiling endpoints are never exposed by accident.
//
// The daemon prints "listening on HOST:PORT" once the socket is open
// (so -addr :0 is scriptable) and drains in-flight requests on SIGTERM
// or SIGINT before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// version is the build version, stamped via
// -ldflags "-X main.version=...".  "dev" for plain go-build binaries.
var version = "dev"

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 503 (0 = 64)")
	cache := flag.Int("cache", 0, "result cache entries (0 = 1024)")
	storeDir := flag.String("store-dir", "", "directory for the disk-backed result store (empty = disabled); results persist across restarts")
	storeMax := flag.Int64("store-max-bytes", 0, "disk-store size bound in bytes before LRU eviction (0 = 1 GiB)")
	peers := flag.String("peers", "", "comma-separated replica set (host:port each, this replica included) for sharded serving (empty = standalone)")
	self := flag.String("self", "", "this replica's own address as it appears in -peers (required with -peers)")
	peerTimeout := flag.Duration("peer-timeout", 0, "per-relay peer round-trip cap (0 = 30s)")
	drain := flag.Duration("drain", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (empty = disabled)")
	quiet := flag.Bool("quiet", false, "suppress per-request log lines")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	if *debugAddr != "" {
		if err := serveDebug(ctx, *debugAddr, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reprosrv: debug listener: %v\n", err)
			os.Exit(1)
		}
	}

	if err := run(ctx, *addr, server.Config{
		MaxConcurrent: *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		StoreDir:      *storeDir,
		StoreMaxBytes: *storeMax,
		Peers:         splitPeers(*peers),
		Self:          *self,
		PeerTimeout:   *peerTimeout,
		DrainTimeout:  *drain,
		Version:       version,
		Logger:        logger,
	}, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "reprosrv: %v\n", err)
		os.Exit(1)
	}
}

// run listens on addr and serves until ctx is canceled, announcing the
// bound address on w so callers can find a :0-assigned port.
func run(ctx context.Context, addr string, cfg server.Config, w io.Writer) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv, err := server.New(cfg)
	if err != nil {
		l.Close()
		return err
	}
	fmt.Fprintf(w, "listening on %s\n", l.Addr())
	return srv.Serve(ctx, l)
}

// splitPeers parses the -peers flag: comma-separated addresses, blanks
// dropped, nil when the flag is empty so the standalone path stays the
// zero config.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// serveDebug opens the pprof listener and serves it in the background.
// The profiling mux is built by hand rather than using http.DefaultServeMux,
// so nothing else that registers against the default mux leaks onto the
// debug port.
func serveDebug(ctx context.Context, addr string, w io.Writer) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	fmt.Fprintf(w, "pprof on %s\n", l.Addr())
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	//repro:detached watchdog closes the debug server on shutdown and dies with the process
	go func() {
		<-ctx.Done()
		srv.Close()
	}()
	//repro:detached debug pprof server serves until the watchdog closes it at process exit
	go srv.Serve(l) //nolint:errcheck
	return nil
}
