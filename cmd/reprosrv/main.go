// Command reprosrv serves the Montage cost simulator as a long-running
// HTTP daemon: the paper's Figure-2 mosaic portal, made literal.
//
// Usage:
//
//	reprosrv -addr 127.0.0.1:8080
//	reprosrv -addr 127.0.0.1:0 -workers 8 -queue 128 -cache 2048
//
// Endpoints (see internal/server): POST /v1/run, POST /v1/sweep (NDJSON
// stream), GET /v1/experiments, GET /v1/experiments/{name},
// GET /v1/advisor, GET /healthz, GET /metrics.
//
// The daemon prints "listening on HOST:PORT" once the socket is open
// (so -addr :0 is scriptable) and drains in-flight requests on SIGTERM
// or SIGINT before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 503 (0 = 64)")
	cache := flag.Int("cache", 0, "result cache entries (0 = 1024)")
	drain := flag.Duration("drain", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *addr, server.Config{
		MaxConcurrent: *workers,
		QueueDepth:    *queue,
		CacheEntries:  *cache,
		DrainTimeout:  *drain,
	}, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "reprosrv: %v\n", err)
		os.Exit(1)
	}
}

// run listens on addr and serves until ctx is canceled, announcing the
// bound address on w so callers can find a :0-assigned port.
func run(ctx context.Context, addr string, cfg server.Config, w io.Writer) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "listening on %s\n", l.Addr())
	return server.New(cfg).Serve(ctx, l)
}
