package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// syncBuffer is a goroutine-safe writer the test can poll for the
// "listening on" announcement.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunBootsAndServes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(ctx, "127.0.0.1:0", server.Config{}, &out) }()

	var addr string
	for deadline := time.Now().Add(10 * time.Second); addr == ""; {
		if s := out.String(); strings.HasPrefix(s, "listening on ") {
			addr = strings.TrimSpace(strings.TrimPrefix(s, "listening on "))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never announced its address")
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(time.Millisecond):
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post("http://"+addr+"/v1/run", "application/json",
		strings.NewReader(`{"workflow":"1deg"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"montage-1deg"`) {
		t.Fatalf("/v1/run = %d %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after cancel")
	}
}

func TestRunBadAddress(t *testing.T) {
	if err := run(context.Background(), "256.0.0.1:bad", server.Config{}, io.Discard); err == nil {
		t.Error("bogus address accepted")
	}
}
