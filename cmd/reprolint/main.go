// Command reprolint is the repo's custom static-analysis suite: four
// analyzers that prove the determinism and cache-key invariants the
// whole service architecture rests on, at compile time instead of at
// runtime.
//
//	keycomplete   every scenario/plan field is canonical-key encoded
//	              or carries a //repro:nokey exclusion annotation
//	determinism   no wall clock, no unseeded randomness, no
//	              order-leaking map iteration in simulation packages
//	strictdecode  every request-body json.Decoder disallows unknown
//	              fields before decoding
//	nilrecorder   every obs.Recorder method keeps its nil guard
//
// Two ways to run it, both offline and dependency-free:
//
//	go run ./cmd/reprolint ./...        # standalone (what `make lint` does)
//	go vet -vettool=$(pwd)/reprolint ./...   # as a vet tool
//
// Standalone mode loads packages through `go list -export`; vet-tool
// mode speaks cmd/go's unit-checking protocol (-V=full, -flags, and a
// vet.cfg per package).  Diagnostics go to stderr as
// file:line:col: analyzer: message, and any finding exits nonzero.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/determinism"
	"repro/internal/lint/keycomplete"
	"repro/internal/lint/nilrecorder"
	"repro/internal/lint/strictdecode"
)

// version is stamped via -ldflags "-X main.version=...": cmd/go
// requires a "name version v..." line from -V=full for its build
// cache fingerprint.
var version = "v0.1.0"

// analyzers is the suite, in reporting order.
var analyzers = []*lint.Analyzer{
	keycomplete.Analyzer,
	determinism.Analyzer,
	strictdecode.Analyzer,
	nilrecorder.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// cmd/go protocol probes.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintf(stdout, "reprolint version %s\n", version)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]") // no analyzer flags
		return 0
	}
	// Unit-checking mode: the single argument is a vet.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], stderr)
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := runStandalone(".", patterns)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runStandalone loads the module packages matching patterns and runs
// the full suite over each.
func runStandalone(dir string, patterns []string) ([]lint.Diagnostic, error) {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	lint.Sort(all)
	return all, nil
}
