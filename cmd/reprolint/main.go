// Command reprolint is the repo's custom static-analysis suite: eight
// analyzers that prove the determinism, cache-key, concurrency and
// streaming invariants the whole service architecture rests on, at
// compile time instead of at runtime.
//
//	keycomplete   every scenario/plan field is canonical-key encoded
//	              or carries a //repro:nokey exclusion annotation
//	determinism   no wall clock, no unseeded randomness, no
//	              order-leaking map iteration in simulation packages
//	              (single audited sites: //repro:nondet-ok <reason>)
//	strictdecode  every request-body json.Decoder disallows unknown
//	              fields before decoding
//	nilrecorder   every obs.Recorder method keeps its nil guard
//	ctxflow       blocking loops consult their context; goroutine
//	              launches receive one or carry //repro:detached
//	goroleak      every goroutine has a join edge (WaitGroup, channel
//	              close, result send) on all paths to return
//	streamdone    NDJSON handlers end every path with exactly one
//	              terminal done/error envelope, flushed
//	hotpath       //repro:hot functions stay allocation-free in their
//	              loop bodies (no fmt, reflect, maps, closures, boxing)
//
// The last four are flow-sensitive: they share the internal/lint/cfg
// basic-block graph and its "on every path to return" query.
//
// Two ways to run it, both offline and dependency-free:
//
//	go run ./cmd/reprolint ./...        # standalone (what `make lint` does)
//	go vet -vettool=$(pwd)/reprolint ./...   # as a vet tool
//
// Standalone mode loads packages through `go list -export`; vet-tool
// mode speaks cmd/go's unit-checking protocol (-V=full, -flags, and a
// vet.cfg per package).  Diagnostics go to stderr as
// file:line:col: analyzer: message, and any finding exits nonzero.
// Standalone mode also takes -timings, which reports per-analyzer wall
// time to stderr so a slow analyzer is visible in CI logs.
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/determinism"
	"repro/internal/lint/goroleak"
	"repro/internal/lint/hotpath"
	"repro/internal/lint/keycomplete"
	"repro/internal/lint/nilrecorder"
	"repro/internal/lint/streamdone"
	"repro/internal/lint/strictdecode"
)

// version is stamped via -ldflags "-X main.version=...": cmd/go
// requires a "name version v..." line from -V=full for its build
// cache fingerprint.
var version = "v0.1.0"

// analyzers is the suite, in reporting order.
var analyzers = []*lint.Analyzer{
	keycomplete.Analyzer,
	determinism.Analyzer,
	strictdecode.Analyzer,
	nilrecorder.Analyzer,
	ctxflow.Analyzer,
	goroleak.Analyzer,
	streamdone.Analyzer,
	hotpath.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// cmd/go protocol probes.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintf(stdout, "reprolint version %s\n", version)
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]") // no analyzer flags
		return 0
	}
	// Unit-checking mode: the single argument is a vet.cfg file.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], stderr)
	}

	patterns := args
	timings := false
	if len(patterns) > 0 && patterns[0] == "-timings" {
		timings = true
		patterns = patterns[1:]
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, elapsed, err := runStandalone(".", patterns, timings)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if timings {
		fmt.Fprintln(stderr, "reprolint timings:")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, elapsed[a.Name].Round(time.Millisecond))
		}
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "reprolint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runStandalone loads the module packages matching patterns and runs
// the full suite over each.  With timings set, analyzers run one at a
// time so each one's wall time is attributable; lint.Sort keeps the
// diagnostic order identical either way.
func runStandalone(dir string, patterns []string, timings bool) ([]lint.Diagnostic, map[string]time.Duration, error) {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var all []lint.Diagnostic
	elapsed := map[string]time.Duration{}
	for _, pkg := range pkgs {
		if timings {
			for _, a := range analyzers {
				start := time.Now() //repro:nondet-ok lint timings are telemetry, not simulation state
				diags, err := lint.Run(pkg, []*lint.Analyzer{a})
				elapsed[a.Name] += time.Since(start) //repro:nondet-ok lint timings are telemetry, not simulation state
				if err != nil {
					return nil, nil, err
				}
				all = append(all, diags...)
			}
			continue
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, diags...)
	}
	lint.Sort(all)
	return all, elapsed, nil
}
