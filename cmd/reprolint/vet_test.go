package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetUnitChecking drives one full vet.cfg round-trip per
// flow-sensitive analyzer: harvest export data from the analyzer's
// fixture module the way cmd/go would (`go list -deps -export -json`),
// write the vet.cfg cmd/go writes, and require the unit checker to
// land the fixture's planted finding -- exit code 2, diagnostic naming
// the analyzer on stderr.  TestProtocolProbes covers the -V=full and
// -flags probes, so together these pin the whole `go vet -vettool=`
// protocol for the new analyzers; `make lint-vet` exercises the same
// path over the real (clean) tree.
func TestVetUnitChecking(t *testing.T) {
	if testing.Short() {
		t.Skip("harvesting export data shells out to go list")
	}
	cases := []struct {
		analyzer string
		mod      string
		pkg      string
		want     string
	}{
		{"ctxflow", "../../internal/lint/ctxflow/testdata/mod", "repro/internal/sweep", "never consults a context"},
		{"goroleak", "../../internal/lint/goroleak/testdata/mod", "repro/internal/server", "signals completion to no one"},
		{"streamdone", "../../internal/lint/streamdone/testdata/mod", "repro/internal/server", "terminal done/error envelope"},
		{"hotpath", "../../internal/lint/hotpath/testdata/mod", "repro/internal/exec", "boxed into"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			cfgPath := writeVetConfig(t, tc.mod, tc.pkg)
			r, w, err := os.Pipe()
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			code := run([]string{cfgPath}, w, w)
			w.Close()
			out, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			if code != 2 {
				t.Fatalf("run(vet.cfg) = %d, want 2 (findings)\noutput:\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("diagnostics missing %q:\n%s", tc.want, out)
			}
			if !strings.Contains(string(out), " "+tc.analyzer+": ") {
				t.Errorf("diagnostics never name analyzer %q:\n%s", tc.analyzer, out)
			}
		})
	}
}

// vetListPackage is the slice of `go list -json` output the config
// builder needs.
type vetListPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

// writeVetConfig builds the vet.cfg cmd/go would write for one unit:
// the target package's files plus export data for every dependency.
func writeVetConfig(t *testing.T, modDir, target string) string {
	t.Helper()
	cmd := exec.Command("go", "list", "-deps", "-export", "-json", target)
	cmd.Dir = modDir
	// The fixture module must resolve on its own terms, never against
	// an enclosing workspace file.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("go list %s: %v\n%s", target, err, errb.String())
	}

	packageFile := map[string]string{}
	importMap := map[string]string{}
	standard := map[string]bool{}
	var tgt *vetListPackage
	dec := json.NewDecoder(&out)
	for {
		var p vetListPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
			importMap[p.ImportPath] = p.ImportPath
		}
		if p.Standard {
			standard[p.ImportPath] = true
		}
		if p.ImportPath == target {
			q := p
			tgt = &q
		}
	}
	if tgt == nil {
		t.Fatalf("go list never yielded the target package %s", target)
	}

	goFiles := make([]string, len(tgt.GoFiles))
	for i, f := range tgt.GoFiles {
		goFiles[i] = filepath.Join(tgt.Dir, f)
	}
	dir := t.TempDir()
	cfg := vetConfig{
		ID:          target,
		Compiler:    "gc",
		Dir:         tgt.Dir,
		ImportPath:  target,
		GoFiles:     goFiles,
		ImportMap:   importMap,
		PackageFile: packageFile,
		Standard:    standard,
		VetxOutput:  filepath.Join(dir, "unit.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}
