package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON cmd/go writes for each `go vet` unit (see
// buildVetConfig in cmd/go/internal/work): one type-checkable package
// with export data for its dependencies.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoFiles    []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// runVet executes one unit of the `go vet -vettool=` protocol.
func runVet(cfgPath string, stderr *os.File) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "reprolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// cmd/go expects a facts file even from a tool that exports no
	// facts; write it before anything can fail so caching stays sound.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "reprolint:", err)
			return 1
		}
	}

	// Facts-only dependency units need no analysis, and test-augmented
	// variants (ID "path [path.test]") would only duplicate the pure
	// package's findings on its non-test files.
	if cfg.VetxOnly || cfg.ID != cfg.ImportPath || len(cfg.GoFiles) == 0 {
		return 0
	}

	goFiles := cfg.GoFiles
	nonTest := goFiles[:0:0]
	for _, f := range goFiles {
		if !strings.HasSuffix(f, "_test.go") {
			nonTest = append(nonTest, f)
		}
	}
	if len(nonTest) == 0 {
		return 0
	}

	pkg, err := lint.LoadUnit(cfg.ImportPath, cfg.Dir, nonTest, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "reprolint:", err)
		return 1
	}
	diags, err := lint.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "reprolint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
