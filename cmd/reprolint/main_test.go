package main

import (
	"io"
	"os"
	"testing"
)

// TestModuleIsClean runs the full suite over the repository the same
// way `make lint` does and requires zero findings, so plain
// `go test ./...` already enforces the invariants the analyzers pin.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis shells out to go list")
	}
	diags, _, err := runStandalone("../..", []string{"./..."}, false)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestProtocolProbes pins the two handshake replies cmd/go sends before
// trusting a vet tool: -V=full must yield "name version v..." and
// -flags must yield a JSON flag list.
func TestProtocolProbes(t *testing.T) {
	out := captureRun(t, []string{"-V=full"})
	if want := "reprolint version " + version + "\n"; out != want {
		t.Errorf("-V=full printed %q, want %q", out, want)
	}
	if out := captureRun(t, []string{"-flags"}); out != "[]\n" {
		t.Errorf("-flags printed %q, want %q", out, "[]\n")
	}
}

// captureRun invokes run with stdout redirected to a pipe and returns
// what it printed.
func captureRun(t *testing.T, args []string) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if code := run(args, w, w); code != 0 {
		t.Fatalf("run(%v) = %d, want 0", args, code)
	}
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}
