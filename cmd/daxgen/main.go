// Command daxgen emits Montage workflows as DAX XML documents, the
// format the paper's authors generated with Montage's mDAG component and
// parsed into their simulator.
//
// Usage:
//
//	daxgen -preset 1deg > montage-1deg.xml
//	daxgen -degrees 6 -seed 7 -o montage-6deg.xml
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/dax"
	"repro/internal/montage"
)

func main() {
	preset := flag.String("preset", "", "preset workflow: 1deg, 2deg or 4deg")
	degrees := flag.Float64("degrees", 0, "custom mosaic size in degrees (alternative to -preset)")
	seed := flag.Int64("seed", 1, "jitter seed for custom workflows")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*preset, *degrees, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "daxgen: %v\n", err)
		os.Exit(1)
	}
}

func run(preset string, degrees float64, seed int64, out string) error {
	var spec montage.Spec
	switch {
	case preset != "" && degrees != 0:
		return fmt.Errorf("use either -preset or -degrees, not both")
	case preset == "1deg":
		spec = montage.OneDegree()
	case preset == "2deg":
		spec = montage.TwoDegree()
	case preset == "4deg":
		spec = montage.FourDegree()
	case preset != "":
		return fmt.Errorf("unknown preset %q (want 1deg, 2deg or 4deg)", preset)
	case degrees > 0:
		spec = montage.FromDegrees(degrees, seed)
	default:
		return fmt.Errorf("pass -preset or -degrees")
	}

	wf, err := montage.Generate(spec)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dax.Write(w, wf); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "daxgen: %s: %d tasks, %d files, %.1f CPU-hours\n",
		wf.Name, wf.NumTasks(), wf.NumFiles(), wf.TotalRuntime().Hours())
	return nil
}
