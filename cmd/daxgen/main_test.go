package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dax"
)

func TestRunWritesParseableDAX(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.xml")
	if err := run("1deg", 0, 1, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wf, err := dax.Read(f)
	if err != nil {
		t.Fatalf("emitted DAX does not parse: %v", err)
	}
	if wf.NumTasks() != 203 {
		t.Errorf("parsed %d tasks, want 203", wf.NumTasks())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `type="mProject"`) {
		t.Error("DAX missing mProject jobs")
	}
}

func TestRunCustomDegrees(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.xml")
	if err := run("", 3, 9, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	wf, err := dax.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if wf.NumTasks() <= 203 {
		t.Errorf("3-degree workflow has %d tasks, want > 203", wf.NumTasks())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, 1, ""); err == nil {
		t.Error("no selection accepted")
	}
	if err := run("9deg", 0, 1, ""); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run("1deg", 2, 1, ""); err == nil {
		t.Error("both preset and degrees accepted")
	}
	if err := run("1deg", 0, 1, "/nonexistent-dir/wf.xml"); err == nil {
		t.Error("unwritable output accepted")
	}
}
