// Command costcalc is a stand-alone cloud cost calculator using the
// paper's fee schedule and normalization: give it resource usage, get a
// dollar breakdown.
//
// Usage:
//
//	costcalc -cpu-hours 84 -in-gb 2 -out-gb 2.229 -gb-months 0.01
//	costcalc -cpu-hours 5.6 -storage-rate 0.30
//
// The defaults are the 2008 Amazon rates; each rate can be overridden to
// explore the paper's closing speculation about providers with different
// fee structures.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cost"
	"repro/internal/report"
	"repro/internal/units"
)

func main() {
	cpuHours := flag.Float64("cpu-hours", 0, "CPU hours consumed")
	inGB := flag.Float64("in-gb", 0, "data transferred into the cloud, GB")
	outGB := flag.Float64("out-gb", 0, "data transferred out of the cloud, GB")
	gbMonths := flag.Float64("gb-months", 0, "storage used, GB-months")
	cpuRate := flag.Float64("cpu-rate", 0.10, "$ per CPU-hour")
	inRate := flag.Float64("in-rate", 0.10, "$ per GB in")
	outRate := flag.Float64("out-rate", 0.16, "$ per GB out")
	storageRate := flag.Float64("storage-rate", 0.15, "$ per GB-month")
	flag.Parse()

	p := cost.Pricing{
		StoragePerGBMonth: units.Money(*storageRate),
		TransferInPerGB:   units.Money(*inRate),
		TransferOutPerGB:  units.Money(*outRate),
		CPUPerHour:        units.Money(*cpuRate),
	}
	if err := run(p, *cpuHours, *inGB, *outGB, *gbMonths); err != nil {
		fmt.Fprintf(os.Stderr, "costcalc: %v\n", err)
		os.Exit(1)
	}
}

func run(p cost.Pricing, cpuHours, inGB, outGB, gbMonths float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if cpuHours < 0 || inGB < 0 || outGB < 0 || gbMonths < 0 {
		return fmt.Errorf("usage quantities must be non-negative")
	}
	b := cost.Breakdown{
		CPU:         p.CPUCost(cpuHours * units.SecondsPerHour),
		Storage:     p.StorageCost(gbMonths * units.GB * units.SecondsPerMonth),
		TransferIn:  p.TransferInCost(units.BytesOf(inGB * units.GB)),
		TransferOut: p.TransferOutCost(units.BytesOf(outGB * units.GB)),
	}
	tbl := report.New("Cloud cost breakdown", "component", "usage", "cost")
	tbl.MustAdd("CPU", fmt.Sprintf("%.3f CPU-hours", cpuHours), b.CPU.String())
	tbl.MustAdd("storage", fmt.Sprintf("%.4f GB-months", gbMonths), b.Storage.String())
	tbl.MustAdd("transfer in", fmt.Sprintf("%.3f GB", inGB), b.TransferIn.String())
	tbl.MustAdd("transfer out", fmt.Sprintf("%.3f GB", outGB), b.TransferOut.String())
	tbl.MustAdd("total", "", b.Total().String())
	return tbl.WriteText(os.Stdout)
}
