package main

import (
	"testing"

	"repro/internal/cost"
)

func TestRunValidatesInputs(t *testing.T) {
	p := cost.Amazon2008()
	if err := run(p, -1, 0, 0, 0); err == nil {
		t.Error("negative CPU hours accepted")
	}
	if err := run(p, 0, -1, 0, 0); err == nil {
		t.Error("negative GB in accepted")
	}
	bad := p
	bad.CPUPerHour = -1
	if err := run(bad, 1, 0, 0, 0); err == nil {
		t.Error("invalid pricing accepted")
	}
}

func TestRunPrintsBreakdown(t *testing.T) {
	// The paper's 4-degree numbers: 84 CPU-hours + 2.229 GB out.
	if err := run(cost.Amazon2008(), 84, 1.985, 2.229, 0.003); err != nil {
		t.Fatal(err)
	}
}
