// Package repro is a Go reproduction of "The Cost of Doing Science on
// the Cloud: The Montage Example" (Deelman, Singh, Livny, Berriman,
// Good; SC 2008).
//
// The library simulates the Montage astronomy workflow on an Amazon
// EC2/S3-like cloud and prices each run under the 2008 Amazon fee
// schedule, reproducing every table and figure of the paper's
// evaluation.  This package is the public facade over the internal
// packages; the typical flow is
//
//	wf, err := repro.Generate(repro.OneDegree())
//	res, err := repro.Run(wf, repro.DefaultPlan())
//	fmt.Println(res.Cost.Total())
//
// Sweeps and the paper's archive-economics analyses are exposed as well;
// the per-figure harness lives in internal/experiments and is runnable
// via the montagesim command or `go test -bench .`.
//
// # The sweep engine
//
// Every parameter scan (ProvisioningSweep, CompareModes, CCRSweep, and
// each figure in internal/experiments) runs its grid points concurrently
// on a worker pool sized by GOMAXPROCS.  Each point is a deterministic
// simulation and collection is order-stable, so a parallel sweep returns
// results byte-identical to a serial loop -- parallelism never changes a
// paper number.  The Context variants (RunContext,
// ProvisioningSweepContext, ...) add cooperative cancellation: cancel
// the context and the grid drains within a few simulated events.
// GenerateCached memoizes workflow generation per spec; the returned
// workflow is shared and must be treated as read-only (every simulation
// path already does).
//
// # The wire layer
//
// The versioned wire layer lives in package repro/wire: the flat v1
// RunRequest/RunDocument (aliased here for compatibility), the
// declarative v2 Scenario document with its any-axis sweep grids, and
// the canonical cache keys.  cmd/reprosrv serves both versions over
// HTTP (with result caching and request coalescing, possible precisely
// because every simulation is a deterministic function of its spec and
// plan), and montagesim -json / -scenario emit the identical documents
// for offline diffing.
package repro

import (
	"context"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dag"
	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/units"
)

// Core value types.
type (
	// Bytes is a size in bytes (decimal SI conventions, 1 GB = 1e9 B).
	Bytes = units.Bytes
	// Duration is a simulated time span in seconds.
	Duration = units.Duration
	// Money is an amount in US dollars.
	Money = units.Money
	// Bandwidth is a transfer rate in bytes per second.
	Bandwidth = units.Bandwidth
)

// Mbps constructs a Bandwidth from megabits per second.
func Mbps(v float64) Bandwidth { return units.Mbps(v) }

// Workflow modeling.
type (
	// Workflow is a task/file DAG with runtimes and sizes attached.
	Workflow = dag.Workflow
	// Spec parameterizes a Montage workflow.
	Spec = montage.Spec
)

// The paper's three workloads.
var (
	// OneDegree is the 203-task 1-degree-square mosaic workflow.
	OneDegree = montage.OneDegree
	// TwoDegree is the 731-task 2-degree-square workflow.
	TwoDegree = montage.TwoDegree
	// FourDegree is the 3,027-task 4-degree-square workflow.
	FourDegree = montage.FourDegree
	// FromDegrees builds a spec for an arbitrary mosaic size.
	FromDegrees = montage.FromDegrees
)

// Generate builds, calibrates and finalizes a Montage workflow.
func Generate(spec Spec) (*Workflow, error) { return montage.Generate(spec) }

// GenerateCached is Generate memoized through a process-wide cache:
// repeated requests for the same spec share one workflow.  The result
// must be treated as read-only.
func GenerateCached(spec Spec) (*Workflow, error) { return montage.Cached(spec) }

// Execution and billing plans.
type (
	// Plan describes how a request executes and how it is billed.
	Plan = core.Plan
	// Result pairs run metrics with the billed cost.
	Result = core.Result
	// Metrics is everything measured during a simulated run.
	Metrics = exec.Metrics
	// Breakdown splits a cost into CPU/storage/transfer components.
	Breakdown = cost.Breakdown
	// Pricing is a cloud fee schedule.
	Pricing = cost.Pricing
	// Mode selects the data-management model.
	Mode = datamgmt.Mode
	// Billing selects provisioned or on-demand CPU charging.
	Billing = core.Billing
	// Preemption is one spot capacity-reclaim event.
	Preemption = exec.Preemption
	// Recovery decides how a preempted task resumes (from scratch, or
	// checkpoint/restart).
	Recovery = exec.Recovery
	// Spot is a spot-market model: discounted CPU, revocable capacity.
	Spot = cost.Spot
	// SpotPlan declaratively describes a seeded spot scenario (market
	// knobs plus a mixed-fleet split); the runner materializes it into
	// per-instance reclaim events once the pool size is known.
	SpotPlan = core.SpotPlan
)

// SpotSchedule samples a deterministic spot revocation schedule: the
// same seed always reproduces the same reclaims, keeping spot runs
// cacheable.
func SpotSchedule(horizon Duration, procs int, ratePerHour float64, warning, down Duration, seed int64) ([]Preemption, error) {
	return exec.SpotSchedule(horizon, procs, ratePerHour, warning, down, seed)
}

// SpotScheduleInstances samples a deterministic per-instance spot
// revocation schedule: every event reclaims exactly one processor, with
// heterogeneous warning leads, each instance an independent Poisson
// stream.  The same seed always reproduces the same reclaims.
func SpotScheduleInstances(horizon Duration, procs int, ratePerHour float64, warning, down Duration, seed int64) ([]Preemption, error) {
	return exec.SpotScheduleInstances(horizon, procs, ratePerHour, warning, down, seed)
}

// Data-management modes (§3 of the paper).
const (
	RemoteIO = datamgmt.RemoteIO
	Regular  = datamgmt.Regular
	Cleanup  = datamgmt.Cleanup
)

// Billing models.
const (
	Provisioned = core.Provisioned
	OnDemand    = core.OnDemand
)

// DefaultPlan returns the paper's baseline plan (regular mode, full
// parallelism, on-demand billing, 10 Mbps, Amazon 2008 rates).
func DefaultPlan() Plan { return core.DefaultPlan() }

// Amazon2008 returns the fee schedule the paper used.
func Amazon2008() Pricing { return cost.Amazon2008() }

// Run executes a workflow under a plan and prices the outcome.
func Run(wf *Workflow, plan Plan) (Result, error) { return core.Run(wf, plan) }

// RunContext is Run with cooperative cancellation.
func RunContext(ctx context.Context, wf *Workflow, plan Plan) (Result, error) {
	return core.RunContext(ctx, wf, plan)
}

// Sweeps.
type (
	// SweepPoint is one row of a provisioning sweep.
	SweepPoint = core.SweepPoint
	// CCRPoint is one row of a CCR sensitivity sweep.
	CCRPoint = core.CCRPoint
)

// ProvisioningSweep reproduces Question 1: provisioned pools of each
// size, reporting costs and execution time.  Grid points run
// concurrently; results are identical to a serial loop.
func ProvisioningSweep(wf *Workflow, processors []int, plan Plan) ([]SweepPoint, error) {
	return core.ProvisioningSweep(wf, processors, plan)
}

// ProvisioningSweepContext is ProvisioningSweep with cooperative
// cancellation.
func ProvisioningSweepContext(ctx context.Context, wf *Workflow, processors []int, plan Plan) ([]SweepPoint, error) {
	return core.ProvisioningSweepContext(ctx, wf, processors, plan)
}

// GeometricProcessors returns the paper's pool sizes 1, 2, 4, ..., 128.
func GeometricProcessors() []int { return core.GeometricProcessors() }

// CompareModes reproduces Question 2a: one on-demand run per
// data-management mode, all three concurrently.
func CompareModes(wf *Workflow, plan Plan) (map[Mode]Result, error) {
	return core.CompareModes(wf, plan)
}

// CompareModesContext is CompareModes with cooperative cancellation.
func CompareModesContext(ctx context.Context, wf *Workflow, plan Plan) (map[Mode]Result, error) {
	return core.CompareModesContext(ctx, wf, plan)
}

// CCRSweep reproduces Fig. 11: runs at rescaled communication-to-
// computation ratios, concurrently across the grid.
func CCRSweep(wf *Workflow, ccrs []float64, plan Plan) ([]CCRPoint, error) {
	return core.CCRSweep(wf, ccrs, plan)
}

// CCRSweepContext is CCRSweep with cooperative cancellation.
func CCRSweepContext(ctx context.Context, wf *Workflow, ccrs []float64, plan Plan) ([]CCRPoint, error) {
	return core.CCRSweepContext(ctx, wf, ccrs, plan)
}

// Archive economics (Questions 2b and 3).
type (
	// BreakEven is the archive break-even analysis.
	BreakEven = archive.BreakEven
	// StorageHorizon is the store-vs-recompute analysis.
	StorageHorizon = archive.StorageHorizon
	// SkyCampaign is the whole-sky costing.
	SkyCampaign = archive.SkyCampaign
)

// Constants from §6 of the paper.
const (
	// TwoMASSArchiveBytes is the 12 TB size of the 2MASS survey.
	TwoMASSArchiveBytes = archive.TwoMASSArchiveBytes
	// WholeSky4DegMosaics tiles the sky with 4-degree plates.
	WholeSky4DegMosaics = archive.WholeSky4DegMosaics
	// WholeSky6DegMosaics tiles the sky with 6-degree plates.
	WholeSky6DegMosaics = archive.WholeSky6DegMosaics
)

// ComputeBreakEven answers Question 2b for an archive of the given size
// and a measured per-request cost.
func ComputeBreakEven(p Pricing, archiveSize Bytes, requestCost Breakdown) (BreakEven, error) {
	return archive.ComputeBreakEven(p, archiveSize, requestCost)
}

// ComputeStorageHorizon answers Question 3's store-vs-recompute
// question for one generated product.
func ComputeStorageHorizon(p Pricing, productSize Bytes, recomputeCost Money) (StorageHorizon, error) {
	return archive.ComputeStorageHorizon(p, productSize, recomputeCost)
}

// ComputeSkyCampaign prices generating n mosaics at a measured
// per-request cost.
func ComputeSkyCampaign(requestCost Breakdown, n int) (SkyCampaign, error) {
	return archive.ComputeSkyCampaign(requestCost, n)
}
