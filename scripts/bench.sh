#!/bin/sh
# Run the executor and event-engine benchmark suites with repeats and
# emit the results as BENCH_exec.json at the repo root: one JSON object
# per benchmark run, carrying name, iterations, ns/op and (when the
# suite reports them) B/op and allocs/op.
#
#   make bench                 # 3 repeats, writes BENCH_exec.json
#   BENCH_COUNT=5 make bench   # more repeats
#   BENCH_OUT=out.json make bench
set -eu
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
OUT="${BENCH_OUT:-BENCH_exec.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench . -benchmem -count "$COUNT" \
	./internal/exec/ ./internal/sim/ | tee "$TMP"

awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ {
	name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "B/op")      bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark runs)"
