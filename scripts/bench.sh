#!/bin/sh
# Run the executor and event-engine benchmark suites with repeats and
# emit the results as BENCH_exec.json at the repo root: one JSON object
# per benchmark run, carrying name, iterations, ns/op and (when the
# suite reports them) B/op and allocs/op.
#
#   make bench                 # 3 repeats, writes BENCH_exec.json
#   BENCH_COUNT=5 make bench   # more repeats
#   BENCH_OUT=out.json make bench
#
# With -check the script becomes the benchmark-regression gate: it
# re-runs the suites, compares each benchmark's mean ns/op against the
# committed baseline (BENCH_BASELINE, default BENCH_exec.json) and
# fails when any benchmark regressed by more than BENCH_TOLERANCE
# percent (default 25).  Refresh the baseline with a plain `make bench`
# when a slowdown is intentional.
#
#   make bench-check
#   BENCH_TOLERANCE=40 sh scripts/bench.sh -check
set -eu
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
OUT="${BENCH_OUT:-BENCH_exec.json}"
if [ "${1:-}" = "-check" ] && [ -z "${BENCH_OUT:-}" ]; then
	# The gate must not clobber the baseline it compares against.
	OUT="$(mktemp)"
fi
TMP="$(mktemp)"
BASE_MEANS="$(mktemp)"
FRESH_MEANS="$(mktemp)"
trap 'rm -f "$TMP" "$BASE_MEANS" "$FRESH_MEANS"' EXIT

go test -run '^$' -bench . -benchmem -count "$COUNT" \
	./internal/exec/ ./internal/sim/ | tee "$TMP"

# The GOMAXPROCS suffix (-8) is stripped from names so runs from
# different machines group under the same benchmark.
awk '
BEGIN { print "["; n = 0 }
/^Benchmark/ {
	name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
	sub(/-[0-9]+$/, "", name)
	for (i = 3; i <= NF; i++) {
		if ($i == "ns/op")     ns = $(i-1)
		if ($i == "B/op")      bytes = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { print "\n]" }
' "$TMP" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark runs)"

[ "${1:-}" = "-check" ] || exit 0

# ---- regression gate ----

BASELINE="${BENCH_BASELINE:-BENCH_exec.json}"
TOLERANCE="${BENCH_TOLERANCE:-25}"
if [ ! -f "$BASELINE" ]; then
	echo "bench: no baseline at $BASELINE; run 'make bench' and commit it" >&2
	exit 1
fi

# mean_of_json prints "name mean_ns" per benchmark, averaging repeats.
mean_of_json() {
	awk '
	{
		if (match($0, /"name": "[^"]+"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
			sub(/-[0-9]+$/, "", name)
			if (match($0, /"ns_per_op": [0-9.e+]+/)) {
				ns = substr($0, RSTART + 13, RLENGTH - 13)
				sum[name] += ns; cnt[name]++
			}
		}
	}
	END { for (n in sum) printf "%s %.1f\n", n, sum[n] / cnt[n] }
	' "$1" | sort
}

mean_of_json "$BASELINE" > "$BASE_MEANS"
mean_of_json "$OUT" > "$FRESH_MEANS"

# Join on benchmark name; only benchmarks present in both files are
# gated, so adding or retiring a benchmark never trips the gate.
join "$BASE_MEANS" "$FRESH_MEANS" | awk -v tol="$TOLERANCE" '
{
	base = $2; fresh = $3
	pct = (fresh - base) / base * 100
	status = "ok"
	if (pct > tol) { status = "REGRESSED"; bad++ }
	printf "%-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", $1, base, fresh, pct, status
	n++
}
END {
	if (n == 0) { print "bench: no benchmarks in common with the baseline" | "cat >&2"; exit 1 }
	if (bad > 0) {
		printf "bench: %d benchmark(s) regressed beyond %s%%\n", bad, tol | "cat >&2"
		exit 1
	}
	printf "bench: %d benchmark(s) within %s%% of the baseline\n", n, tol
}
'
