#!/bin/sh
# Run the benchmark suites with repeats and emit one baseline file per
# suite at the repo root -- BENCH_exec.json (executor + event engine),
# BENCH_sweep.json (sweep-engine grid kernel) and BENCH_store.json
# (disk-store put/get/scan): one JSON object per benchmark run, carrying
# name, iterations, ns/op and (when the suite reports them) B/op and
# allocs/op.
#
#   make bench                 # 3 repeats, writes BENCH_*.json
#   BENCH_COUNT=5 make bench   # more repeats
#   BENCH_DIR=out make bench   # write the files somewhere else
#
# With -check the script becomes the benchmark-regression gate: it
# re-runs every suite into a scratch directory (the gate must not
# clobber the baselines it compares against), then for each committed
# BENCH_*.json baseline compares each benchmark's mean ns/op and fails
# when any benchmark regressed by more than BENCH_TOLERANCE percent
# (default 25).  Refresh the baselines with a plain `make bench` when a
# slowdown is intentional.
#
#   make bench-check
#   BENCH_TOLERANCE=40 sh scripts/bench.sh -check
set -eu
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
DIR="${BENCH_DIR:-.}"
SCRATCH=""

TMP="$(mktemp)"
BASE_MEANS="$(mktemp)"
FRESH_MEANS="$(mktemp)"
cleanup() {
	rm -f "$TMP" "$BASE_MEANS" "$FRESH_MEANS"
	if [ -n "$SCRATCH" ]; then
		rm -rf "$SCRATCH"
	fi
}
trap cleanup EXIT

if [ "${1:-}" = "-check" ]; then
	SCRATCH="$(mktemp -d)"
	DIR="$SCRATCH"
fi

# suites maps each baseline name to the packages its suite benches.
# Adding a line here (plus committing the baseline it writes) is all it
# takes to put a new suite under the regression gate.
suites() {
	echo "exec ./internal/exec/ ./internal/sim/"
	echo "sweep ./internal/sweep/"
	echo "store ./internal/store/"
}

# bench_to_json converts `go test -bench` output to the baseline JSON.
# The GOMAXPROCS suffix (-8) is stripped from names so runs from
# different machines group under the same benchmark.  An optional
# second argument is an ERE of benchmark names to keep out of the
# baseline (they still run and print; they just are not gated).
bench_to_json() {
	awk -v exclude="${2:-}" '
	BEGIN { print "["; n = 0 }
	/^Benchmark/ {
		name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
		sub(/-[0-9]+$/, "", name)
		if (exclude != "" && name ~ exclude) next
		for (i = 3; i <= NF; i++) {
			if ($i == "ns/op")     ns = $(i-1)
			if ($i == "B/op")      bytes = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
		}
		if (ns == "") next
		if (n++) printf ",\n"
		printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
		if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
		if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
		printf "}"
	}
	END { print "\n]" }
	' "$1"
}

suites | while read -r suite pkgs; do
	# The store's put (two fsyncs per op) and startup-scan (256 files of
	# stat + readdir) benchmarks are IO-bound and swing well past 25%
	# run to run, so only the CPU-bound read path is gated for them.
	exclude=""
	[ "$suite" = "store" ] && exclude="StorePut|StoreOpenScan"
	# shellcheck disable=SC2086 # pkgs is a deliberate word list
	go test -run '^$' -bench . -benchmem -count "$COUNT" $pkgs | tee "$TMP"
	bench_to_json "$TMP" "$exclude" > "$DIR/BENCH_$suite.json"
	echo "wrote $DIR/BENCH_$suite.json ($(grep -c '"name"' "$DIR/BENCH_$suite.json") benchmark runs)"
done

[ "${1:-}" = "-check" ] || exit 0

# ---- regression gate ----

TOLERANCE="${BENCH_TOLERANCE:-25}"

# mean_of_json prints "name mean_ns" per benchmark, averaging repeats.
mean_of_json() {
	awk '
	{
		if (match($0, /"name": "[^"]+"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
			sub(/-[0-9]+$/, "", name)
			if (match($0, /"ns_per_op": [0-9.e+]+/)) {
				ns = substr($0, RSTART + 13, RLENGTH - 13)
				sum[name] += ns; cnt[name]++
			}
		}
	}
	END { for (n in sum) printf "%s %.1f\n", n, sum[n] / cnt[n] }
	' "$1" | sort
}

found=0
for BASELINE in BENCH_*.json; do
	[ -f "$BASELINE" ] || continue
	found=1
	FRESH="$SCRATCH/$BASELINE"
	if [ ! -f "$FRESH" ]; then
		echo "bench: baseline $BASELINE matches no suite in scripts/bench.sh; retire the file or add its suite" >&2
		exit 1
	fi
	echo "== $BASELINE =="
	mean_of_json "$BASELINE" > "$BASE_MEANS"
	mean_of_json "$FRESH" > "$FRESH_MEANS"

	# Join on benchmark name; only benchmarks present in both files are
	# gated, so adding or retiring a benchmark never trips the gate.
	join "$BASE_MEANS" "$FRESH_MEANS" | awk -v tol="$TOLERANCE" '
	{
		base = $2; fresh = $3
		pct = (fresh - base) / base * 100
		status = "ok"
		if (pct > tol) { status = "REGRESSED"; bad++ }
		printf "%-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", $1, base, fresh, pct, status
		n++
	}
	END {
		if (n == 0) { print "bench: no benchmarks in common with the baseline" | "cat >&2"; exit 1 }
		if (bad > 0) {
			printf "bench: %d benchmark(s) regressed beyond %s%%\n", bad, tol | "cat >&2"
			exit 1
		}
		printf "bench: %d benchmark(s) within %s%% of the baseline\n", n, tol
	}
	'
done
if [ "$found" = 0 ]; then
	echo "bench: no BENCH_*.json baselines; run 'make bench' and commit them" >&2
	exit 1
fi
