#!/bin/sh
# Smoke test persistence and sharding end to end.
#
# Part 1 (persistence): boot reprosrv with -store-dir, compute one run,
# SIGTERM the daemon, boot a fresh one over the same directory and
# assert the warm daemon serves the identical bytes with X-Cache: store
# -- i.e. from disk, without re-simulating.
#
# Part 2 (sharding): boot a two-replica peered pool and assert a
# sharded /v2/sweep streams bytes identical to the same sweep on a
# standalone daemon -- same rows, same grid order, same terminal done
# envelope.
set -eu
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18771}"
PEER_A="${SMOKE_PEER_A:-127.0.0.1:18772}"
PEER_B="${SMOKE_PEER_B:-127.0.0.1:18773}"
WORK="$(mktemp -d)"
BIN="$WORK/reprosrv"
STORE="$WORK/store"
SRV=""
SRV_A=""
SRV_B=""
cleanup() {
	for pid in "$SRV" "$SRV_A" "$SRV_B"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/reprosrv

wait_healthy() {
	for _ in $(seq 1 50); do
		if curl -sf "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "smoke: server on $1 never became healthy"
	cat "$WORK/log."* 2>/dev/null || true
	exit 1
}

fail() { echo "smoke: $1"; exit 1; }

SCENARIO='{"version": 2, "workflow": {"name": "1deg"}, "fleet": {"processors": 16, "reliable": 4}, "spot": {"rate_per_hour": 1.5, "seed": 7, "discount": 0.65}}'

# ---- Part 1: the store survives a restart ----

"$BIN" -addr "$ADDR" -store-dir "$STORE" -quiet >"$WORK/log.1" 2>&1 &
SRV=$!
wait_healthy "$ADDR"

curl -sf -D "$WORK/h1" -X POST "http://$ADDR/v2/run" \
	-H 'Content-Type: application/json' -d "$SCENARIO" >"$WORK/cold"
grep -qi '^X-Cache: miss' "$WORK/h1" || fail "cold run was not a miss"
curl -sf "http://$ADDR/metrics" | grep -q '^reprosrv_store_writes_total 1$' || fail "cold run was not persisted"

kill -TERM "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""

"$BIN" -addr "$ADDR" -store-dir "$STORE" -quiet >"$WORK/log.2" 2>&1 &
SRV=$!
wait_healthy "$ADDR"

curl -sf -D "$WORK/h2" -X POST "http://$ADDR/v2/run" \
	-H 'Content-Type: application/json' -d "$SCENARIO" >"$WORK/warm"
grep -qi '^X-Cache: store' "$WORK/h2" || fail "restarted daemon did not serve from the store"
cmp -s "$WORK/cold" "$WORK/warm" || fail "store served different bytes after restart"
curl -sf "http://$ADDR/metrics" | grep -q '^reprosrv_simulations_total 0$' || fail "restarted daemon re-simulated a stored run"
curl -sf "http://$ADDR/healthz" | grep -q '"store"' || fail "healthz has no store block"

kill -TERM "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""

# ---- Part 2: a sharded sweep matches the standalone stream ----

SWEEP='{"scenario": {"version": 2, "workflow": {"name": "1deg"}}, "axes": [{"axis": "fleet.processors", "values": [1, 2, 3, 4, 5, 6, 7, 8]}]}'

"$BIN" -addr "$ADDR" -quiet >"$WORK/log.3" 2>&1 &
SRV=$!
wait_healthy "$ADDR"
curl -sf -X POST "http://$ADDR/v2/sweep" \
	-H 'Content-Type: application/json' -d "$SWEEP" >"$WORK/single"
kill -TERM "$SRV"
wait "$SRV" 2>/dev/null || true
SRV=""

"$BIN" -addr "$PEER_A" -peers "$PEER_A,$PEER_B" -self "$PEER_A" -store-dir "$WORK/store-a" -quiet >"$WORK/log.a" 2>&1 &
SRV_A=$!
"$BIN" -addr "$PEER_B" -peers "$PEER_A,$PEER_B" -self "$PEER_B" -store-dir "$WORK/store-b" -quiet >"$WORK/log.b" 2>&1 &
SRV_B=$!
wait_healthy "$PEER_A"
wait_healthy "$PEER_B"

curl -sf -X POST "http://$PEER_A/v2/sweep" \
	-H 'Content-Type: application/json' -d "$SWEEP" >"$WORK/sharded"
cmp -s "$WORK/single" "$WORK/sharded" || fail "sharded sweep differs from the standalone stream"
tail -n 1 "$WORK/sharded" | grep -q '"done"' || fail "sharded sweep has no terminal done envelope"
curl -sf "http://$PEER_A/metrics" | grep -q '^reprosrv_peer_failures_total 0$' || fail "healthy pool recorded peer failures"

echo "smoke ok: store survived a restart on $ADDR; sharded sweep on $PEER_A/$PEER_B matched the standalone stream"
