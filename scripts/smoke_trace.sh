#!/bin/sh
# Smoke test the flight-recorder surface: boot reprosrv, POST a traced
# spot scenario to /v2/run and assert the timeline envelope, stream the
# same run over GET /v2/run and assert the NDJSON contract, then check
# the new telemetry families on /metrics.
set -eu
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18767}"
BIN="$(mktemp -d)/reprosrv"
OUT="$(mktemp)"
LOG="$(mktemp)"
SRV=""
cleanup() {
	[ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
	rm -rf "$(dirname "$BIN")" "$OUT" "$OUT.headers" "$OUT.families" "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/reprosrv
"$BIN" -addr "$ADDR" -quiet >"$LOG" 2>&1 &
SRV=$!

ok=""
for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "smoke: server never became healthy"; cat "$LOG"; exit 1; }

fail() { echo "smoke: $1"; cat "$OUT"; exit 1; }

SCENARIO='{
	"version": 2,
	"workflow": {"name": "1deg"},
	"fleet": {"processors": 16, "reliable": 4},
	"spot": {"rate_per_hour": 1.5, "seed": 7, "discount": 0.65},
	"recovery": {"checkpoint_seconds": 300, "checkpoint_overhead_seconds": 10},
	"trace": true
}'

# Traced POST /v2/run: full document with timeline, cache bypassed.
curl -sf -D "$OUT.headers" -X POST "http://$ADDR/v2/run" \
	-H 'Content-Type: application/json' -d "$SCENARIO" >"$OUT"
grep -qi '^X-Cache: bypass' "$OUT.headers" || { rm -f "$OUT.headers"; fail "traced run did not bypass the cache"; }
rm -f "$OUT.headers"
grep -q '"timeline"' "$OUT" || fail "traced document has no timeline"
grep -q '"critical_path"' "$OUT" || fail "traced document has no critical_path"
for kind in revoke checkpoint restart; do
	grep -q "\"kind\": \"$kind\"" "$OUT" || fail "timeline has no $kind events"
done

# GET /v2/run: NDJSON stream ending in a done envelope.
ENC=$(printf '%s' "$SCENARIO" | tr -d '\n\t' | sed 's/ /%20/g; s/"/%22/g; s/{/%7B/g; s/}/%7D/g; s/,/%2C/g')
curl -sf "http://$ADDR/v2/run?scenario=$ENC" >"$OUT"
grep -q '"event"' "$OUT" || fail "trace stream has no event lines"
tail -n 1 "$OUT" | grep -q '"done"' || fail "trace stream did not end with a done envelope"
tail -n 1 "$OUT" | grep -q '"critical_path"' || fail "done envelope has no critical_path"

# Telemetry families on /metrics.
curl -sf "http://$ADDR/metrics" >"$OUT"
grep -q '# TYPE reprosrv_request_duration_seconds histogram' "$OUT" || fail "no latency histogram family"
grep -q 'reprosrv_request_duration_seconds_bucket{endpoint="run_v2",le="+Inf"}' "$OUT" || fail "no run_v2 latency buckets"
grep -q 'reprosrv_build_info{' "$OUT" || fail "no build_info metric"
grep -q 'reprosrv_uptime_seconds' "$OUT" || fail "no uptime metric"
# HELP/TYPE order is sorted by family name: the emitted TYPE lines must
# already be in sort order.
grep '^# TYPE ' "$OUT" | awk '{print $3}' >"$OUT.families"
sort -c "$OUT.families" 2>/dev/null || { rm -f "$OUT.families"; fail "metric families are not sorted"; }
rm -f "$OUT.families"

echo "smoke ok: traced run + trace stream + telemetry families on $ADDR"
