#!/bin/sh
# Smoke test the policy-tournament endpoint: boot reprosrv, POST a
# two-bundle tournament and assert the NDJSON contract -- one row
# envelope per bundle, then a terminal done envelope carrying the
# ranking.
set -eu
cd "$(dirname "$0")/.."

ADDR="${SMOKE_ADDR:-127.0.0.1:18766}"
BIN="$(mktemp -d)/reprosrv"
OUT="$(mktemp)"
LOG="$(mktemp)"
SRV=""
cleanup() {
	[ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
	rm -rf "$(dirname "$BIN")" "$OUT" "$LOG"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/reprosrv
"$BIN" -addr "$ADDR" >"$LOG" 2>&1 &
SRV=$!

ok=""
for _ in $(seq 1 50); do
	if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "smoke: server never became healthy"; cat "$LOG"; exit 1; }

curl -sf -X POST "http://$ADDR/v2/experiments/policy-tournament" \
	-H 'Content-Type: application/json' \
	-d '{"bundles":[{},{"placement":"heft","victim":"cost-aware","checkpoint":"adaptive","sizing":"half"}]}' \
	>"$OUT"

fail() { echo "smoke: $1"; cat "$OUT"; exit 1; }

rows=$(grep -c '"row"' "$OUT" || true)
[ "$rows" -eq 2 ] || fail "expected 2 row envelopes, got $rows"
last=$(tail -n 1 "$OUT")
echo "$last" | grep -q '"done"' || fail "stream did not end with a done envelope"
echo "$last" | grep -q '"ranking"' || fail "done envelope carries no ranking"
echo "$last" | grep -q '"rank":1' || fail "ranking is missing rank 1"
echo "$last" | grep -q '"rank":2' || fail "ranking is missing rank 2"

echo "smoke ok: 2 rows + ranking envelope on $ADDR"
