// Package wire is the versioned wire layer of the simulator: the JSON
// request and result documents a service (or a CLI talking to one)
// exchanges with the simulation engine, plus the canonical cache keys
// that make deterministic simulations cacheable.
//
// Two schema versions live here:
//
//   - v1 (RunRequest/RunDocument) is the original flat request: one bag
//     of top-level knobs with a bolted-on spot sub-object.  It is frozen
//     and deprecated; /v1 endpoints keep serving it as thin adapters.
//   - v2 (Scenario/RunDocumentV2) is the declarative ScenarioSpec: one
//     versioned document with nested workflow, fleet, storage, pricing,
//     spot and recovery sections.  Every v1 request upgrades losslessly
//     into a v2 scenario (RunRequest.Scenario), and v1 resolution is
//     implemented by that upgrade, so the two surfaces cannot drift.
//
// The v2 document is also the sweep substrate: SweepRequest declares a
// grid as {axis: <any scenario path>, values: [...]} pairs, so any
// field of the scenario -- a spot revocation rate, a fleet split, a
// checkpoint interval, a pricing rate -- is sweepable without new
// server code (see Axis and Scenario.With).
//
// Every decoder here rejects unknown fields: a misspelled knob costs
// the caller a clear error, never a silently ignored field.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
)

// Version is the current scenario schema version.
const Version = 2

// DecodeStrict decodes one JSON document from r into v, rejecting
// unknown fields (anywhere in the document, nested sections included)
// and trailing data.  Every POST body in the service is decoded through
// this, so a misspelled field is a 400, not a silently applied default.
func DecodeStrict(r io.Reader, v any) error {
	if err := decodeStrict(r, v); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}

func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the JSON document")
	}
	return nil
}

// encode renders v in the canonical wire encoding: two-space-indented
// JSON with a trailing newline.  The server and montagesim both emit
// exactly this, so CLI output can be diffed byte for byte against API
// output.
func encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
