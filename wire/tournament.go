package wire

// The policy-tournament wire surface: POST /v2/experiments/policy-tournament
// runs one base scenario under several policy bundles and streams the
// outcomes as NDJSON, then ranks the bundles in the terminal envelope.

// TournamentRequest is the POST body of a policy tournament: a base
// scenario plus the policy bundles competing on it.  A nil scenario
// runs the canned default (1-degree workflow, mixed 16/4 fleet under a
// reclaiming spot market with checkpointing); empty bundles run the
// default roster, which fields at least two competitors per policy
// slot.  Seed, when set, reseeds the base scenario's spot revocation
// sampling.
type TournamentRequest struct {
	Scenario *Scenario         `json:"scenario,omitempty"`
	Bundles  []PoliciesSection `json:"bundles,omitempty"`
	Seed     *int64            `json:"seed,omitempty"`
}

// TournamentRow is one bundle's outcome within a tournament stream: the
// entry index, the competing bundle, and the full run document of the
// base scenario under it.
type TournamentRow struct {
	Index  int             `json:"index"`
	Bundle PoliciesSection `json:"bundle"`
	RunDocumentV2
}

// TournamentStanding is one line of the final ranking, best first:
// bundles are ordered by total cost, then makespan, then wasted CPU.
type TournamentStanding struct {
	Rank             int             `json:"rank"`
	Index            int             `json:"index"`
	Bundle           PoliciesSection `json:"bundle"`
	CostDollars      float64         `json:"cost_dollars"`
	MakespanSeconds  float64         `json:"makespan_seconds"`
	WastedCPUSeconds float64         `json:"wasted_cpu_seconds"`
}

// TournamentDone is the success sentinel of a tournament stream: the
// row count and the full ranking, best bundle first.
type TournamentDone struct {
	Rows    int                  `json:"rows"`
	Ranking []TournamentStanding `json:"ranking"`
}

// TournamentEnvelope is one NDJSON line of a tournament response.
// Exactly one field is set:
//
//	{"row": {...}}                       one bundle's outcome, in entry order
//	{"done": {"rows": N, "ranking": [...]}}  terminal: the ranking
//	{"error": "..."}                     terminal: the tournament failed
//
// Like the sweep stream, a response that ends without "done" or
// "error" was truncated.
type TournamentEnvelope struct {
	Row   *TournamentRow  `json:"row,omitempty"`
	Done  *TournamentDone `json:"done,omitempty"`
	Error string          `json:"error,omitempty"`
}
