package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/montage"
)

// Axis is one sweep dimension: a dotted path into the scenario document
// and the values to substitute there.  Any scenario path works --
// "fleet.processors", "spot.rate_per_hour", "recovery.checkpoint_seconds",
// "storage.mode", "pricing.cpu_per_hour", "workflow.ccr" -- because the
// substitution operates on the JSON document itself; a new scenario
// field is sweepable the day it is added, with no sweep-engine change.
type Axis struct {
	Path   string `json:"axis"`
	Values []any  `json:"values"`
}

// SweepRequest is the v2 wire form of a grid request: a base scenario
// plus the axes to sweep.  The grid is the cross product of the axes in
// declaration order, first axis outermost; each point is the base
// scenario with that point's values substituted.
type SweepRequest struct {
	Scenario Scenario `json:"scenario"`
	Axes     []Axis   `json:"axes"`
}

// MaxGridPoints bounds a sweep grid: the cross product multiplies
// quickly, and an unbounded grid would let one cheap POST schedule
// millions of simulations.
const MaxGridPoints = 4096

// GridPoint is one materialized grid point: the concrete scenario plus
// the axis values that produced it (aligned with the request's axes).
type GridPoint struct {
	Scenario Scenario
	Values   []any
}

// Grid expands the request into its grid points, validating every axis
// path and value against the scenario schema.  The returned scenarios
// are fully independent documents; resolving each one validates the
// combination the same way a direct POST would.
func (r SweepRequest) Grid() ([]GridPoint, error) {
	if len(r.Axes) == 0 {
		return nil, fmt.Errorf("wire: sweep declares no axes")
	}
	total := 1
	for _, ax := range r.Axes {
		if strings.TrimSpace(ax.Path) == "" {
			return nil, fmt.Errorf("wire: sweep axis with an empty path")
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("wire: axis %q has no values", ax.Path)
		}
		if total > MaxGridPoints/len(ax.Values) {
			return nil, fmt.Errorf("wire: sweep grid exceeds %d points", MaxGridPoints)
		}
		total *= len(ax.Values)
	}
	points := []GridPoint{{Scenario: r.Scenario}}
	for _, ax := range r.Axes {
		next := make([]GridPoint, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				s, err := p.Scenario.With(ax.Path, v)
				if err != nil {
					return nil, err
				}
				values := make([]any, 0, len(p.Values)+1)
				values = append(values, p.Values...)
				values = append(values, v)
				next = append(next, GridPoint{Scenario: s, Values: values})
			}
		}
		points = next
	}
	return points, nil
}

// ResolvedPoint is one grid point resolved to a runnable (spec, plan)
// pair, alongside the materialized scenario and the axis values that
// produced it.
type ResolvedPoint struct {
	Scenario Scenario
	Values   []any
	Spec     montage.Spec
	Plan     core.Plan
}

// ResolveGrid expands the request and resolves every point up front:
// the one grid pipeline the server, the CLI and the experiment registry
// all share, so a malformed combination fails with the offending grid
// index before any simulation runs.
func (r SweepRequest) ResolveGrid() ([]ResolvedPoint, error) {
	points, err := r.Grid()
	if err != nil {
		return nil, err
	}
	out := make([]ResolvedPoint, len(points))
	for i, p := range points {
		spec, plan, err := p.Scenario.Resolve()
		if err != nil {
			return nil, fmt.Errorf("wire: grid point %d: %w", i, err)
		}
		out[i] = ResolvedPoint{Scenario: p.Scenario, Values: p.Values, Spec: spec, Plan: plan}
	}
	return out, nil
}

// With returns a copy of the scenario with the field at the dotted path
// set to value.  The substitution operates on the scenario's JSON form
// and re-decodes strictly, so an unknown path or a type-mismatched
// value fails with a clear error instead of being silently dropped --
// the property that makes every scenario field a valid sweep axis.
// Intermediate sections absent from the base scenario are created.
func (s Scenario) With(path string, value any) (Scenario, error) {
	segs := strings.Split(path, ".")
	for _, seg := range segs {
		if strings.TrimSpace(seg) == "" {
			return Scenario{}, fmt.Errorf("wire: malformed scenario path %q", path)
		}
	}
	raw, err := json.Marshal(s)
	if err != nil {
		return Scenario{}, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Scenario{}, err
	}
	cur := doc
	for _, seg := range segs[:len(segs)-1] {
		child, ok := cur[seg]
		if !ok || child == nil {
			m := map[string]any{}
			cur[seg] = m
			cur = m
			continue
		}
		m, ok := child.(map[string]any)
		if !ok {
			return Scenario{}, fmt.Errorf("wire: scenario path %q descends into non-object field %q", path, seg)
		}
		cur = m
	}
	cur[segs[len(segs)-1]] = value
	out, err := json.Marshal(doc)
	if err != nil {
		return Scenario{}, err
	}
	var result Scenario
	if err := decodeStrict(bytes.NewReader(out), &result); err != nil {
		return Scenario{}, fmt.Errorf("wire: axis %q with value %v: %w", path, value, err)
	}
	return result, nil
}
