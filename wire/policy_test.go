package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/policy"
)

// TestWithPolicyAxes: every policy slot is a sweepable axis, and the
// substitution materializes the policies section on a document that
// never mentioned it.
func TestWithPolicyAxes(t *testing.T) {
	for path, value := range map[string]string{
		"policies.placement":  "heft",
		"policies.victim":     "cost-aware",
		"policies.checkpoint": "adaptive",
		"policies.sizing":     "half",
	} {
		s, err := base1deg().With(path, value)
		if err != nil {
			t.Errorf("With(%q, %q): %v", path, value, err)
			continue
		}
		if s.Policies == nil {
			t.Errorf("With(%q, %q) did not materialize the policies section", path, value)
			continue
		}
		if _, _, err := s.Resolve(); err != nil {
			t.Errorf("With(%q, %q) does not resolve: %v", path, value, err)
		}
	}
}

func TestWithPolicyErrors(t *testing.T) {
	if _, err := base1deg().With("policies.placement", 3); err == nil {
		t.Error("numeric value accepted for a policy-name axis")
	}
	if _, err := base1deg().With("policies.placment", "heft"); err == nil {
		t.Error("misspelled policy leaf accepted")
	}
	// A registered axis path with an unregistered policy name passes the
	// structural substitution but must fail at Resolve, like a direct
	// POST of the same document.
	s, err := base1deg().With("policies.victim", "coin-flip")
	if err != nil {
		t.Fatalf("structural substitution rejected a string value: %v", err)
	}
	if _, _, err := s.Resolve(); err == nil {
		t.Error("unregistered policy name resolved")
	} else if !strings.Contains(err.Error(), "coin-flip") {
		t.Errorf("resolve error does not name the bad policy: %v", err)
	}
}

// TestScenarioPoliciesResolve pins the wire -> core plumbing: the
// section lands on the plan as a bundle, and unknown names fail with
// the wire prefix.
func TestScenarioPoliciesResolve(t *testing.T) {
	s := base1deg()
	s.Policies = &PoliciesSection{Placement: "heft", Checkpoint: "adaptive"}
	_, plan, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := policy.Bundle{
		Placement:  "heft",
		Victim:     policy.DefaultVictim,
		Checkpoint: "adaptive",
		Sizing:     policy.DefaultSizing,
	}
	if plan.Policies != want {
		t.Errorf("plan bundle = %+v, want %+v", plan.Policies, want)
	}

	s.Policies = &PoliciesSection{Sizing: "golden-ratio"}
	if _, _, err := s.Resolve(); err == nil {
		t.Error("unknown sizing policy resolved")
	} else if !strings.HasPrefix(err.Error(), "wire:") {
		t.Errorf("resolve error lost the wire prefix: %v", err)
	}
}

// TestEchoScenarioPolicies: the default bundle is omitted from echoes
// (pre-policy documents stay byte-identical), a non-default bundle is
// echoed with every slot filled.
func TestEchoScenarioPolicies(t *testing.T) {
	spec, plan, err := base1deg().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if echo := EchoScenario(spec, plan); echo.Policies != nil {
		t.Errorf("default bundle echoed: %+v", echo.Policies)
	}

	s := base1deg()
	s.Policies = &PoliciesSection{Victim: "cost-aware"}
	spec, plan, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	echo := EchoScenario(spec, plan)
	if echo.Policies == nil {
		t.Fatal("non-default bundle not echoed")
	}
	want := PoliciesSection{
		Placement:  policy.DefaultPlacement,
		Victim:     "cost-aware",
		Checkpoint: policy.DefaultCheckpoint,
		Sizing:     policy.DefaultSizing,
	}
	if *echo.Policies != want {
		t.Errorf("echoed policies = %+v, want every slot canonical: %+v", *echo.Policies, want)
	}
}

// TestPolicyRefactorByteIdentity is the acceptance criterion of the
// policy extraction: run documents under the default bundle must match
// the fixtures captured BEFORE the decision points were carved out of
// the executor, byte for byte.  These two goldens are frozen
// pre-refactor artifacts -- deliberately outside the -update flow, so a
// behavior change in a default policy cannot be silently baked in by
// regenerating them.
func TestPolicyRefactorByteIdentity(t *testing.T) {
	for name, s := range map[string]Scenario{
		"baseline": {Version: 2, Workflow: WorkflowSection{Name: "1deg"}},
		"spot_mixed": {
			Version:  2,
			Workflow: WorkflowSection{Name: "1deg"},
			Fleet:    &FleetSection{Processors: 16, Reliable: 4},
			Spot:     &SpotSection{RatePerHour: 1, Seed: 7, Discount: 0.6},
			Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 1e8},
		},
	} {
		t.Run(name, func(t *testing.T) {
			spec, plan, err := s.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			wf, err := montage.Cached(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(wf, plan)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewRunDocumentV2(spec, res).Encode()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_v2_run_"+name+".json")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing frozen pre-refactor fixture: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("default-bundle document drifted from the pre-refactor capture %s", path)
			}
		})
	}
}
