package wire

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/obs"
	"repro/internal/units"
)

// ---- v1 result documents (frozen) ----

// PlanDocument is the v1 wire form of the plan a run executed under.
type PlanDocument struct {
	Mode          string            `json:"mode"`
	Processors    int               `json:"processors"`
	Billing       string            `json:"billing"`
	BandwidthMbps float64           `json:"bandwidth_mbps"`
	Spot          *SpotPlanDocument `json:"spot,omitempty"`
}

// SpotPlanDocument is the v1 wire form of the spot scenario a run
// executed under, echoed back so a caller can verify every knob
// round-tripped.
type SpotPlanDocument struct {
	RatePerHour               float64 `json:"rate_per_hour"`
	WarningSeconds            float64 `json:"warning_seconds"`
	DowntimeSeconds           float64 `json:"downtime_seconds"`
	Seed                      int64   `json:"seed"`
	Discount                  float64 `json:"discount"`
	OnDemandProcessors        int     `json:"on_demand_processors"`
	CheckpointSeconds         float64 `json:"checkpoint_seconds,omitempty"`
	CheckpointOverheadSeconds float64 `json:"checkpoint_overhead_seconds,omitempty"`
}

// RunDocument is the v1 machine-readable result of one simulation: the
// document POST /v1/run returns and montagesim -run -json prints.
//
// Deprecated: /v2/run returns RunDocumentV2, which echoes the full
// normalized scenario and splits utilization by sub-pool.
type RunDocument struct {
	Workflow string         `json:"workflow"`
	Tasks    int            `json:"tasks"`
	Plan     PlanDocument   `json:"plan"`
	Metrics  exec.Metrics   `json:"metrics"`
	Cost     cost.Breakdown `json:"cost"`
	Total    units.Money    `json:"total"`
}

// NewRunDocument builds the v1 wire document for a finished run.
func NewRunDocument(res core.Result) RunDocument {
	p := res.Plan.Canonical()
	doc := RunDocument{
		Workflow: res.Metrics.Workflow,
		Tasks:    res.Metrics.TasksRun,
		Plan: PlanDocument{
			Mode:          p.Mode.String(),
			Processors:    p.Processors,
			Billing:       p.Billing.String(),
			BandwidthMbps: p.Bandwidth.BytesPerSecond() * 8 / 1e6,
		},
		Metrics: res.Metrics,
		Cost:    res.Cost,
		Total:   res.Cost.Total(),
	}
	if p.Spot.Enabled() || p.Recovery.Checkpoint {
		doc.Plan.Spot = &SpotPlanDocument{
			RatePerHour:               p.Spot.RatePerHour,
			WarningSeconds:            p.Spot.Warning.Seconds(),
			DowntimeSeconds:           p.Spot.Downtime.Seconds(),
			Seed:                      p.Spot.Seed,
			Discount:                  p.Spot.Discount,
			OnDemandProcessors:        p.Spot.OnDemand,
			CheckpointSeconds:         p.Recovery.Interval.Seconds(),
			CheckpointOverheadSeconds: p.Recovery.Overhead.Seconds(),
		}
	}
	return doc
}

// Encode renders the document in the canonical wire encoding:
// two-space-indented JSON with a trailing newline.
func (d RunDocument) Encode() ([]byte, error) { return encode(d) }

// ---- v2 result documents ----

// UtilizationDocument splits CPU utilization by sub-pool: consumption
// over the capacity that was actually available in each, the numbers a
// fleet-sizing dashboard plots per market.
type UtilizationDocument struct {
	// Overall is CPUSeconds over the whole fleet's capacity integral.
	Overall float64 `json:"overall"`
	// Reliable is the on-demand sub-pool's busy share; 0 on a fleet with
	// no reliable floor.
	Reliable float64 `json:"reliable"`
	// Spot is the revocable sub-pool's busy share over its (revocation-
	// shrunk) capacity integral.
	Spot float64 `json:"spot"`
}

// RunDocumentV2 is the v2 machine-readable result of one simulation:
// the document POST /v2/run returns and montagesim -scenario -json
// prints.  Scenario is the canonical (defaults filled) form of the
// request, so a response can be re-POSTed or diffed against the input.
type RunDocumentV2 struct {
	Version     int                 `json:"version"`
	Workflow    string              `json:"workflow"`
	Tasks       int                 `json:"tasks"`
	Scenario    Scenario            `json:"scenario"`
	Metrics     exec.Metrics        `json:"metrics"`
	Utilization UtilizationDocument `json:"utilization"`
	Cost        cost.Breakdown      `json:"cost"`
	Total       units.Money         `json:"total"`
	// Timeline is the flight-recorder event sequence of a traced run
	// (scenario.trace), in causal order.  Omitted on untraced runs, so
	// every pre-trace document encodes byte-identically.
	Timeline []obs.Event `json:"timeline,omitempty"`
	// CriticalPath ranks the traced run's top tasks by blocking time
	// (processor occupancy plus ready-queue wait), the place an
	// optimizer should look first.
	CriticalPath []obs.PathEntry `json:"critical_path,omitempty"`
}

// NewRunDocumentV2 builds the v2 wire document for a finished run.
func NewRunDocumentV2(spec montage.Spec, res core.Result) RunDocumentV2 {
	m := res.Metrics
	return RunDocumentV2{
		Version:  Version,
		Workflow: m.Workflow,
		Tasks:    m.TasksRun,
		Scenario: EchoScenario(spec, res.Plan),
		Metrics:  m,
		Utilization: UtilizationDocument{
			Overall:  m.Utilization,
			Reliable: ratio(m.CPUSeconds-m.SpotCPUSeconds, m.ReliableCapacityProcSeconds),
			Spot:     ratio(m.SpotCPUSeconds, m.SpotCapacityProcSeconds),
		},
		Cost:  res.Cost,
		Total: res.Cost.Total(),
	}
}

// Encode renders the document in the canonical wire encoding.
func (d RunDocumentV2) Encode() ([]byte, error) { return encode(d) }

// CriticalPathTopK is how many tasks a traced document's critical-path
// summary ranks: enough to see where the time went, small enough to
// read.
const CriticalPathTopK = 10

// NewTracedRunDocumentV2 builds the v2 document for a traced run: the
// plain document plus the recorder's timeline and critical-path
// summary, with scenario.trace echoed true so the response stays
// re-POSTable as the traced request it answers.
func NewTracedRunDocumentV2(spec montage.Spec, res core.Result, rec *obs.Recorder) RunDocumentV2 {
	doc := NewRunDocumentV2(spec, res)
	doc.Scenario.Trace = true
	doc.Timeline = rec.Events()
	doc.CriticalPath = obs.CriticalPath(rec.Events(), CriticalPathTopK)
	return doc
}

// ratio guards a utilization division: an empty sub-pool reports 0,
// never NaN or Inf (encoding/json rejects non-finite floats).
func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// ---- v2 sweep stream ----

// SweepRow is one grid point's result within a v2 sweep stream: the
// grid index plus the full run document (whose Scenario field is this
// point's materialized scenario).
type SweepRow struct {
	Index int `json:"index"`
	RunDocumentV2
}

// SweepDone is the success sentinel of a sweep stream: how many rows
// were streamed.
type SweepDone struct {
	Rows int `json:"rows"`
}

// SweepEnvelope is one NDJSON line of a v2 sweep response.  Exactly one
// field is set, so a client can always tell what it is reading:
//
//	{"row": {...}}          one grid point, in grid order
//	{"done": {"rows": N}}   terminal: the grid completed
//	{"error": "..."}        terminal: the sweep failed mid-stream
//
// The terminal line is the truncation detector -- the HTTP status line
// is long gone by the time a mid-grid point fails, so a stream that
// ends without "done" or "error" was cut off.
type SweepEnvelope struct {
	Row   *SweepRow  `json:"row,omitempty"`
	Done  *SweepDone `json:"done,omitempty"`
	Error string     `json:"error,omitempty"`
}

// ---- v2 trace stream ----

// TraceDone is the terminal line of a trace stream: the event count,
// how many events the recorder's bound dropped, the critical-path
// summary and the run's bottom line.
type TraceDone struct {
	Events       int             `json:"events"`
	Dropped      int             `json:"dropped,omitempty"`
	CriticalPath []obs.PathEntry `json:"critical_path,omitempty"`
	Total        units.Money     `json:"total"`
}

// TraceEnvelope is one NDJSON line of a GET /v2/run trace stream.
// Exactly one field is set per line:
//
//	{"event": {...}}   one timeline event, in causal order
//	{"done": {...}}    terminal: the run completed
//	{"error": "..."}   terminal: the run failed
//
// As with sweeps, a stream that ends without "done" or "error" was
// truncated.
type TraceEnvelope struct {
	Event *obs.Event `json:"event,omitempty"`
	Done  *TraceDone `json:"done,omitempty"`
	Error string     `json:"error,omitempty"`
}
