package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/montage"
)

// CanonicalRunKey derives a stable cache key for a (spec, plan) pair.
// Simulations are deterministic functions of exactly these two values,
// so equal keys guarantee byte-identical result documents; the server's
// result cache and request coalescing both key on it.
//
// The encoding is explicit and field-by-field -- no reflective %#v,
// whose output silently collapses distinct values (and drifts across Go
// versions).  Every Plan field must appear here; the field-count guards
// in key_test.go fail the build of any Plan, Spec, SpotPlan, Recovery
// or Pricing change that forgets to extend the key.
func CanonicalRunKey(spec montage.Spec, plan core.Plan) string {
	p := plan.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "spec{name=%q deg=%g img=%d diff=%d cpu=%g mosaic=%d ccr=%g bw=%g seed=%d}",
		spec.Name, spec.Degrees, spec.Images, spec.Diffs, float64(spec.TotalCPU),
		int64(spec.MosaicBytes), spec.TargetCCR, spec.Bandwidth.BytesPerSecond(), spec.Seed)
	fmt.Fprintf(&b, "|plan{mode=%s procs=%d billing=%s bw=%g curve=%t vmstart=%g policy=%s failp=%g fails=%d",
		p.Mode, p.Processors, p.Billing, p.Bandwidth.BytesPerSecond(), p.RecordCurve,
		float64(p.VMStartup), p.Policy, p.FailureProb, p.FailureSeed)
	fmt.Fprintf(&b, " pricing{store=%g in=%g out=%g cpu=%g gran=%s}",
		float64(p.Pricing.StoragePerGBMonth), float64(p.Pricing.TransferInPerGB),
		float64(p.Pricing.TransferOutPerGB), float64(p.Pricing.CPUPerHour), p.Pricing.Granularity)
	b.WriteString(" outages[")
	for _, o := range p.Outages {
		fmt.Fprintf(&b, "(%g,%g)", float64(o.Start), float64(o.End))
	}
	b.WriteString("] preempt[")
	for _, pre := range p.Preemptions {
		fmt.Fprintf(&b, "(%g,%d,%g,%g)", float64(pre.Reclaim), pre.Processors, float64(pre.Warning), float64(pre.Restore))
	}
	fmt.Fprintf(&b, "] recovery{ckpt=%t iv=%g oh=%g bytes=%d}",
		p.Recovery.Checkpoint, float64(p.Recovery.Interval), float64(p.Recovery.Overhead), int64(p.Recovery.Bytes))
	fmt.Fprintf(&b, " spot{rate=%g warn=%g down=%g seed=%d disc=%g ondemand=%d}",
		p.Spot.RatePerHour, float64(p.Spot.Warning), float64(p.Spot.Downtime),
		p.Spot.Seed, p.Spot.Discount, p.Spot.OnDemand)
	fmt.Fprintf(&b, " policies{place=%s victim=%s ckpt=%s size=%s}}",
		p.Policies.Placement, p.Policies.Victim, p.Policies.Checkpoint, p.Policies.Sizing)
	return b.String()
}

// CanonicalRunKeyV2 is the cache key of the v2 surface.  The same
// (spec, plan) resolves under both surfaces, but the marshaled response
// bodies differ (v1 and v2 documents have different shapes), so the two
// key spaces must never collide -- the version prefix keeps a cached v1
// body from ever being served on /v2/run or vice versa.
func CanonicalRunKeyV2(spec montage.Spec, plan core.Plan) string {
	return "v2|" + CanonicalRunKey(spec, plan)
}

// KeyHash is the content address of a canonical run key: its SHA-256,
// hex-encoded.  The disk store names entry files with it and the shard
// ring positions keys on the hash circle with it, so every replica --
// and every restart -- derives the same address for the same scenario.
func KeyHash(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// RunKeyHashV2 is the content address of a resolved v2 scenario:
// KeyHash over CanonicalRunKeyV2.  Equal hashes mean byte-identical
// result documents (modulo the astronomically unlikely SHA-256
// collision, which the store's recorded-key check would still catch).
func RunKeyHashV2(spec montage.Spec, plan core.Plan) string {
	return KeyHash(CanonicalRunKeyV2(spec, plan))
}
