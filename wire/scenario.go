package wire

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/policy"
	"repro/internal/units"
)

// Scenario is the v2 wire schema: one declarative, versioned document
// describing a complete simulation scenario.  The zero value of every
// optional section reproduces the paper's baseline (regular mode, full
// parallelism, on-demand billing, 10 Mbps, Amazon 2008 rates, reliable
// capacity); a section is only needed for the knobs it turns.
//
// POST /v2/run consumes exactly this document, montagesim -scenario
// reads it from a file, SweepRequest sweeps any of its paths, and
// result documents echo it back normalized (defaults filled in) so a
// response is always re-POSTable.
type Scenario struct {
	// Version must be 2.  An explicit version field is the upgrade
	// contract: future schema changes bump it instead of silently
	// reinterpreting old documents.
	Version int `json:"version"`
	// Workflow selects what runs.
	Workflow WorkflowSection `json:"workflow"`
	// Fleet sizes the processor pool and its reliable/spot split.
	Fleet *FleetSection `json:"fleet,omitempty"`
	// Storage picks the data-management model and the user<->cloud link.
	Storage *StorageSection `json:"storage,omitempty"`
	// Pricing picks the CPU charging model and the fee schedule.
	Pricing *PricingSection `json:"pricing,omitempty"`
	// Spot describes the spot market the revocable sub-pool rents from.
	Spot *SpotSection `json:"spot,omitempty"`
	// Recovery decides how preempted tasks resume.
	Recovery *RecoverySection `json:"recovery,omitempty"`
	// Policies names the scheduling and recovery policies, one per
	// decision point.  Omitted (or empty) slots select the historical
	// defaults, so older documents resolve unchanged.
	Policies *PoliciesSection `json:"policies,omitempty"`
	// Trace opts the run into the flight recorder: the result document
	// carries the event timeline and a critical-path summary.  Tracing
	// is a pure observation knob -- it never changes what the run
	// computes -- so it is deliberately excluded from CanonicalRunKeyV2;
	// traced runs bypass the result cache instead of polluting it with
	// timeline-bearing bodies.
	//repro:nokey trace — pure observer; traced runs bypass the result cache instead of feeding the key
	Trace bool `json:"trace,omitempty"`
}

// WorkflowSection selects the workload: a preset by name, or a custom
// mosaic by size.
type WorkflowSection struct {
	// Name selects a preset: 1deg, 2deg or 4deg (the full montage-Ndeg
	// names are accepted too).  Empty selects a custom mosaic.
	Name string `json:"name,omitempty"`
	// Degrees sizes a custom mosaic when Name is empty.
	Degrees float64 `json:"degrees,omitempty"`
	// CCR, when positive, recalibrates the workflow's communication-to-
	// computation ratio at the reference bandwidth -- the v2 form of the
	// paper's Fig. 11 sensitivity axis, sweepable like any other path.
	CCR float64 `json:"ccr,omitempty"`
}

// FleetSection sizes the compute fleet.
type FleetSection struct {
	// Processors provisioned; 0 means enough for full parallelism.
	Processors int `json:"processors,omitempty"`
	// Reliable carves an on-demand sub-pool out of the fleet: never
	// reclaimed, billed at the full rate, hosting the critical-path
	// tasks.  The remaining processors are the revocable spot sub-pool.
	Reliable int `json:"reliable,omitempty"`
}

// StorageSection picks the data-management model and the link.
type StorageSection struct {
	// Mode is remote-io, regular or cleanup; empty means regular.
	Mode string `json:"mode,omitempty"`
	// BandwidthMbps is the user<->cloud link speed; 0 means the paper's
	// 10 Mbps.
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
}

// PricingSection picks the charging model and overrides the fee
// schedule.  A zero rate keeps the Amazon 2008 default for that rate.
type PricingSection struct {
	// Billing is provisioned or on-demand; empty means on-demand.
	Billing string `json:"billing,omitempty"`
	// Rate overrides; 0 keeps the paper's Amazon 2008 value.
	CPUPerHour        float64 `json:"cpu_per_hour,omitempty"`
	StoragePerGBMonth float64 `json:"storage_per_gb_month,omitempty"`
	TransferInPerGB   float64 `json:"transfer_in_per_gb,omitempty"`
	TransferOutPerGB  float64 `json:"transfer_out_per_gb,omitempty"`
	// Granularity is per-second (the paper's normalization) or per-hour
	// (what 2008 EC2 actually billed).
	Granularity string `json:"granularity,omitempty"`
}

// SpotSection is the spot market: the knobs of the seeded per-instance
// reclaim sampling and the discount bought by accepting it.
type SpotSection struct {
	// RatePerHour is each spot instance's reclaim intensity; 0 disables
	// revocations (useful to price a mixed fleet under a calm market).
	RatePerHour float64 `json:"rate_per_hour,omitempty"`
	// WarningSeconds is the reclaim notice lead; 0 defaults to EC2's
	// 120 s when revocations are enabled.
	WarningSeconds float64 `json:"warning_seconds,omitempty"`
	// DowntimeSeconds is how long reclaimed capacity stays gone; 0
	// defaults to 600 s when revocations are enabled.
	DowntimeSeconds float64 `json:"downtime_seconds,omitempty"`
	// Seed drives the deterministic revocation sampling.
	Seed int64 `json:"seed,omitempty"`
	// Discount is the fraction taken off the on-demand CPU rate for spot
	// capacity, in [0, 1).
	Discount float64 `json:"discount,omitempty"`
}

// RecoverySection is the checkpoint/restart policy for preempted tasks.
type RecoverySection struct {
	// CheckpointSeconds enables checkpoint/restart with this interval of
	// useful compute between checkpoints; 0 re-runs preempted tasks from
	// scratch.
	CheckpointSeconds float64 `json:"checkpoint_seconds,omitempty"`
	// CheckpointOverheadSeconds is the wall-clock cost of writing one
	// checkpoint.
	CheckpointOverheadSeconds float64 `json:"checkpoint_overhead_seconds,omitempty"`
	// CheckpointBytes is the size of one checkpoint image: each write
	// moves this much data into cloud storage (charged as storage
	// occupancy and inbound transfer) and each restore reads it back.
	CheckpointBytes float64 `json:"checkpoint_bytes,omitempty"`
}

// PoliciesSection names one policy per scheduling/recovery decision
// point, each a key into the corresponding registry.  Empty slots mean
// the historical defaults (rank placement, deterministic victims,
// interval checkpointing, static sizing), so a document written before
// this section existed resolves to byte-identical results.
type PoliciesSection struct {
	// Placement decides which ready tasks claim the reliable slots of a
	// mixed fleet: rank (default), heft or fifo.
	Placement string `json:"placement,omitempty"`
	// Victim decides which running spot attempt a reclaim kills:
	// deterministic (default), cost-aware or least-progress.
	Victim string `json:"victim,omitempty"`
	// Checkpoint spaces a running attempt's snapshots: interval
	// (default), adaptive (Young/Daly) or risk (warning-window only).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Sizing decides the reliable/spot split: static (default), quarter
	// or half.
	Sizing string `json:"sizing,omitempty"`
}

// bundle converts the section to its core policy value.
func (p PoliciesSection) bundle() policy.Bundle {
	return policy.Bundle{
		Placement:  p.Placement,
		Victim:     p.Victim,
		Checkpoint: p.Checkpoint,
		Sizing:     p.Sizing,
	}
}

// maxRequestDegrees caps custom mosaic sizes on the wire.  Task count
// grows with sky area; the paper tops out at 4 degrees and the
// whole-sky tilings at 6, while an uncapped request could ask one cheap
// POST to materialize a multi-million-task DAG.
const maxRequestDegrees = 20

// Defaults filled into a spot section with revocations enabled.
const (
	defaultSpotWarningSeconds  = 120 // EC2's two-minute reclaim notice
	defaultSpotDowntimeSeconds = 600
)

// resolve turns the workflow section into a concrete spec.
func (w WorkflowSection) resolve() (montage.Spec, error) {
	var spec montage.Spec
	switch {
	case w.Name != "" && w.Degrees != 0:
		return montage.Spec{}, fmt.Errorf("wire: scenario names workflow %q and degrees %v; use one", w.Name, w.Degrees)
	case w.Name != "":
		switch strings.ToLower(w.Name) {
		case "1deg", "montage-1deg":
			spec = montage.OneDegree()
		case "2deg", "montage-2deg":
			spec = montage.TwoDegree()
		case "4deg", "montage-4deg":
			spec = montage.FourDegree()
		default:
			return montage.Spec{}, fmt.Errorf("wire: unknown workflow %q (want 1deg, 2deg or 4deg)", w.Name)
		}
	case w.Degrees < 0:
		return montage.Spec{}, fmt.Errorf("wire: negative degrees %v", w.Degrees)
	case w.Degrees > maxRequestDegrees:
		return montage.Spec{}, fmt.Errorf("wire: %v-degree mosaic exceeds the %v-degree request limit", w.Degrees, float64(maxRequestDegrees))
	case w.Degrees > 0:
		spec = montage.FromDegrees(w.Degrees, int64(roundDegrees(w.Degrees)))
	default:
		return montage.Spec{}, fmt.Errorf("wire: scenario selects no workflow (set workflow.name or workflow.degrees)")
	}
	switch {
	case w.CCR < 0:
		return montage.Spec{}, fmt.Errorf("wire: negative CCR %v", w.CCR)
	case w.CCR > 0:
		spec.TargetCCR = w.CCR
	}
	return spec, nil
}

// Resolve turns the scenario into a concrete spec and plan, rejecting
// anything malformed.  The returned plan is canonical (defaults filled
// in), so equal scenarios resolve to equal values and share cache keys.
func (s Scenario) Resolve() (montage.Spec, core.Plan, error) {
	fail := func(err error) (montage.Spec, core.Plan, error) { return montage.Spec{}, core.Plan{}, err }
	if s.Version != Version {
		return fail(fmt.Errorf("wire: unsupported scenario version %d (this build speaks version %d)", s.Version, Version))
	}
	spec, err := s.Workflow.resolve()
	if err != nil {
		return fail(err)
	}
	plan := core.DefaultPlan()

	if st := s.Storage; st != nil {
		if st.Mode != "" {
			m, err := datamgmt.ParseMode(st.Mode)
			if err != nil {
				return fail(err)
			}
			plan.Mode = m
		}
		if st.BandwidthMbps < 0 {
			return fail(fmt.Errorf("wire: negative bandwidth %v Mbps", st.BandwidthMbps))
		}
		if st.BandwidthMbps > 0 {
			plan.Bandwidth = units.Mbps(st.BandwidthMbps)
		}
	}

	if pr := s.Pricing; pr != nil {
		switch strings.ToLower(pr.Billing) {
		case "", "on-demand", "ondemand":
			plan.Billing = core.OnDemand
		case "provisioned":
			plan.Billing = core.Provisioned
		default:
			return fail(fmt.Errorf("wire: unknown billing %q (want provisioned or on-demand)", pr.Billing))
		}
		// A fixed-order list, not a map: with two negative rates the
		// reported one must not depend on map iteration order.
		rates := []struct {
			name string
			v    float64
		}{
			{"cpu_per_hour", pr.CPUPerHour},
			{"storage_per_gb_month", pr.StoragePerGBMonth},
			{"transfer_in_per_gb", pr.TransferInPerGB},
			{"transfer_out_per_gb", pr.TransferOutPerGB},
		}
		for _, r := range rates {
			if r.v < 0 {
				return fail(fmt.Errorf("wire: negative pricing rate %s = %v", r.name, r.v))
			}
		}
		fees := cost.Amazon2008()
		if pr.CPUPerHour > 0 {
			fees.CPUPerHour = units.Money(pr.CPUPerHour)
		}
		if pr.StoragePerGBMonth > 0 {
			fees.StoragePerGBMonth = units.Money(pr.StoragePerGBMonth)
		}
		if pr.TransferInPerGB > 0 {
			fees.TransferInPerGB = units.Money(pr.TransferInPerGB)
		}
		if pr.TransferOutPerGB > 0 {
			fees.TransferOutPerGB = units.Money(pr.TransferOutPerGB)
		}
		switch strings.ToLower(pr.Granularity) {
		case "", "per-second":
			fees.Granularity = cost.PerSecond
		case "per-hour":
			fees.Granularity = cost.PerHour
		default:
			return fail(fmt.Errorf("wire: unknown billing granularity %q (want per-second or per-hour)", pr.Granularity))
		}
		plan.Pricing = fees
	}

	reliable := 0
	if f := s.Fleet; f != nil {
		if f.Processors < 0 {
			return fail(fmt.Errorf("wire: negative processor count %d", f.Processors))
		}
		if f.Reliable < 0 {
			return fail(fmt.Errorf("wire: negative reliable sub-pool %d", f.Reliable))
		}
		plan.Processors = f.Processors
		reliable = f.Reliable
	}

	// A zero-valued spot section is identical to an absent one (reliable
	// capacity): an axis sweeping spot.rate_per_hour down to 0 must
	// resolve, and misspelled knobs are already caught by the strict
	// decoder, not by an emptiness check.
	var spot SpotSection
	if sp := s.Spot; sp != nil {
		switch {
		case sp.RatePerHour < 0:
			return fail(fmt.Errorf("wire: negative spot rate %v/hour", sp.RatePerHour))
		case sp.WarningSeconds < 0:
			return fail(fmt.Errorf("wire: negative spot warning %v s", sp.WarningSeconds))
		case sp.DowntimeSeconds < 0:
			return fail(fmt.Errorf("wire: negative spot downtime %v s", sp.DowntimeSeconds))
		case sp.Discount < 0 || sp.Discount >= 1:
			return fail(fmt.Errorf("wire: spot discount %v outside [0,1)", sp.Discount))
		}
		spot = *sp
	}

	// With an explicit pool size the fleet split is decidable now; a
	// malformed split must cost the caller a 400, not a 500 at run time
	// (a zero pool defers to the run-time check, which knows the
	// workflow's full parallelism).
	if plan.Processors > 0 {
		if reliable > plan.Processors {
			return fail(fmt.Errorf("wire: reliable sub-pool %d exceeds the %d-processor fleet", reliable, plan.Processors))
		}
		if spot.RatePerHour > 0 && reliable == plan.Processors {
			return fail(fmt.Errorf("wire: spot reclaims enabled but the %d-processor fleet has no spot capacity", plan.Processors))
		}
	}

	if s.Spot != nil || reliable > 0 {
		warning := spot.WarningSeconds
		downtime := spot.DowntimeSeconds
		if spot.RatePerHour > 0 {
			if warning == 0 {
				warning = defaultSpotWarningSeconds
			}
			if downtime == 0 {
				downtime = defaultSpotDowntimeSeconds
			}
		}
		plan.Spot = core.SpotPlan{
			RatePerHour: spot.RatePerHour,
			Warning:     units.Duration(warning),
			Downtime:    units.Duration(downtime),
			Seed:        spot.Seed,
			Discount:    spot.Discount,
			OnDemand:    reliable,
		}
	}

	// Likewise, checkpoint_seconds swept to 0 disables checkpointing --
	// the documented meaning of the zero value -- provided no orphaned
	// overhead or image size remains.
	if rc := s.Recovery; rc != nil {
		switch {
		case rc.CheckpointSeconds < 0:
			return fail(fmt.Errorf("wire: negative checkpoint interval %v s", rc.CheckpointSeconds))
		case rc.CheckpointOverheadSeconds < 0:
			return fail(fmt.Errorf("wire: negative checkpoint overhead %v s", rc.CheckpointOverheadSeconds))
		case rc.CheckpointBytes < 0:
			return fail(fmt.Errorf("wire: negative checkpoint size %v bytes", rc.CheckpointBytes))
		case rc.CheckpointSeconds == 0 && (rc.CheckpointOverheadSeconds > 0 || rc.CheckpointBytes > 0):
			return fail(fmt.Errorf("wire: checkpoint overhead/bytes set without an interval"))
		}
		if rc.CheckpointSeconds > 0 {
			plan.Recovery = exec.Recovery{
				Checkpoint: true,
				Interval:   units.Duration(rc.CheckpointSeconds),
				Overhead:   units.Duration(rc.CheckpointOverheadSeconds),
				Bytes:      units.BytesOf(rc.CheckpointBytes),
			}
		}
	}

	// Policy names must be registered: an unknown name is the caller's
	// typo and costs a 400 here, not a 500 at run time.
	if pol := s.Policies; pol != nil {
		plan.Policies = pol.bundle()
		if err := plan.Policies.Validate(); err != nil {
			return fail(fmt.Errorf("wire: %w", err))
		}
	}

	return spec, plan.Canonical(), nil
}

// roundDegrees matches the seed used by the v1 request for custom
// mosaics, keeping upgraded requests spec-identical.
func roundDegrees(d float64) float64 {
	if d < 0 {
		return 0
	}
	return float64(int64(d + 0.5))
}

// EchoScenario reconstructs the canonical v2 scenario for a resolved
// (spec, plan) pair: every section explicit, defaults filled in.  The
// result is what v2 documents echo back, and it is re-POSTable --
// resolving the echo reproduces the same spec and plan.
func EchoScenario(spec montage.Spec, plan core.Plan) Scenario {
	p := plan.Canonical()
	s := Scenario{Version: Version}
	base := montage.Spec{}
	switch spec.Name {
	case montage.OneDegree().Name:
		s.Workflow.Name = spec.Name
		base = montage.OneDegree()
	case montage.TwoDegree().Name:
		s.Workflow.Name = spec.Name
		base = montage.TwoDegree()
	case montage.FourDegree().Name:
		s.Workflow.Name = spec.Name
		base = montage.FourDegree()
	default:
		s.Workflow.Degrees = spec.Degrees
		base = montage.FromDegrees(spec.Degrees, int64(roundDegrees(spec.Degrees)))
	}
	if spec.TargetCCR != base.TargetCCR {
		s.Workflow.CCR = spec.TargetCCR
	}
	if p.Processors != 0 || p.Spot.OnDemand != 0 {
		s.Fleet = &FleetSection{Processors: p.Processors, Reliable: p.Spot.OnDemand}
	}
	s.Storage = &StorageSection{
		Mode:          p.Mode.String(),
		BandwidthMbps: p.Bandwidth.BytesPerSecond() * 8 / 1e6,
	}
	s.Pricing = &PricingSection{
		Billing:           p.Billing.String(),
		CPUPerHour:        float64(p.Pricing.CPUPerHour),
		StoragePerGBMonth: float64(p.Pricing.StoragePerGBMonth),
		TransferInPerGB:   float64(p.Pricing.TransferInPerGB),
		TransferOutPerGB:  float64(p.Pricing.TransferOutPerGB),
		Granularity:       p.Pricing.Granularity.String(),
	}
	market := SpotSection{
		RatePerHour:     p.Spot.RatePerHour,
		WarningSeconds:  p.Spot.Warning.Seconds(),
		DowntimeSeconds: p.Spot.Downtime.Seconds(),
		Seed:            p.Spot.Seed,
		Discount:        p.Spot.Discount,
	}
	if market != (SpotSection{}) {
		s.Spot = &market
	}
	if p.Recovery.Checkpoint {
		s.Recovery = &RecoverySection{
			CheckpointSeconds:         p.Recovery.Interval.Seconds(),
			CheckpointOverheadSeconds: p.Recovery.Overhead.Seconds(),
			CheckpointBytes:           float64(p.Recovery.Bytes),
		}
	}
	// The default bundle is omitted rather than echoed: pre-policy
	// documents must echo byte-identically.
	if !p.Policies.IsDefault() {
		b := p.Policies.Canonical()
		s.Policies = &PoliciesSection{
			Placement:  b.Placement,
			Victim:     b.Victim,
			Checkpoint: b.Checkpoint,
			Sizing:     b.Sizing,
		}
	}
	return s
}
