package wire

import (
	"fmt"
	"testing"
)

func base1deg() Scenario {
	return Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg"}}
}

func TestWithCreatesAbsentSections(t *testing.T) {
	s, err := base1deg().With("spot.rate_per_hour", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Spot == nil || s.Spot.RatePerHour != 1.5 {
		t.Fatalf("spot section not materialized: %+v", s.Spot)
	}
	if s.Workflow.Name != "1deg" || s.Version != 2 {
		t.Errorf("substitution disturbed other fields: %+v", s)
	}
}

func TestWithEveryScenarioFamily(t *testing.T) {
	for path, value := range map[string]any{
		"workflow.ccr":                0.5,
		"fleet.processors":            16,
		"fleet.reliable":              4,
		"storage.mode":                "cleanup",
		"storage.bandwidth_mbps":      100,
		"pricing.billing":             "provisioned",
		"pricing.cpu_per_hour":        0.25,
		"spot.rate_per_hour":          2,
		"spot.discount":               0.6,
		"recovery.checkpoint_seconds": 300,
		"recovery.checkpoint_bytes":   1e9,
	} {
		if _, err := base1deg().With(path, value); err != nil {
			t.Errorf("With(%q, %v): %v", path, value, err)
		}
	}
}

func TestWithErrors(t *testing.T) {
	for name, tc := range map[string]struct {
		path  string
		value any
	}{
		"unknown leaf":      {"spot.rate_per_hr", 1},
		"unknown section":   {"fleets.processors", 8},
		"empty path":        {"", 1},
		"empty segment":     {"spot.", 1},
		"non-object parent": {"version.minor", 1},
		"type mismatch":     {"fleet.processors", "many"},
		"section clobber":   {"spot", 3},
	} {
		if _, err := base1deg().With(tc.path, tc.value); err == nil {
			t.Errorf("%s: With(%q, %v) accepted", name, tc.path, tc.value)
		}
	}
}

func TestGridCrossProductOrder(t *testing.T) {
	req := SweepRequest{
		Scenario: base1deg(),
		Axes: []Axis{
			{Path: "fleet.processors", Values: []any{8, 16}},
			{Path: "spot.rate_per_hour", Values: []any{0.5, 1, 2}},
		},
	}
	points, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("grid has %d points, want 6", len(points))
	}
	// First axis outermost: (8,0.5) (8,1) (8,2) (16,0.5) (16,1) (16,2).
	var got []string
	for _, p := range points {
		got = append(got, fmt.Sprintf("%d/%g", p.Scenario.Fleet.Processors, p.Scenario.Spot.RatePerHour))
		if len(p.Values) != 2 {
			t.Fatalf("point carries %d axis values, want 2", len(p.Values))
		}
	}
	want := []string{"8/0.5", "8/1", "8/2", "16/0.5", "16/1", "16/2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grid order = %v, want %v", got, want)
		}
	}
	// Every point must resolve: the grid engine defers combination
	// validation to the same Resolve a direct POST would hit.
	for i, p := range points {
		if _, _, err := p.Scenario.Resolve(); err != nil {
			t.Errorf("point %d does not resolve: %v", i, err)
		}
	}
}

func TestGridValidation(t *testing.T) {
	big := make([]any, 100)
	for i := range big {
		big[i] = i
	}
	for name, req := range map[string]SweepRequest{
		"no axes":    {Scenario: base1deg()},
		"empty path": {Scenario: base1deg(), Axes: []Axis{{Path: " ", Values: []any{1}}}},
		"no values":  {Scenario: base1deg(), Axes: []Axis{{Path: "fleet.processors"}}},
		"over cap":   {Scenario: base1deg(), Axes: []Axis{{Path: "fleet.processors", Values: big}, {Path: "spot.seed", Values: big}}},
		"bad path":   {Scenario: base1deg(), Axes: []Axis{{Path: "no.such.path", Values: []any{1}}}},
	} {
		if _, err := req.Grid(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
