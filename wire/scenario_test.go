package wire

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datamgmt"
	"repro/internal/units"
)

func TestScenarioResolveBaseline(t *testing.T) {
	spec, plan, err := Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg"}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "montage-1deg" {
		t.Errorf("spec = %q", spec.Name)
	}
	if plan.Mode != datamgmt.Regular || plan.Billing != core.OnDemand ||
		plan.Bandwidth != units.Mbps(10) || plan.Processors != 0 {
		t.Errorf("baseline defaults not applied: %+v", plan)
	}
	if plan.Pricing != cost.Amazon2008() {
		t.Errorf("pricing default = %+v", plan.Pricing)
	}
}

func TestScenarioResolveVersionGate(t *testing.T) {
	for _, v := range []int{0, 1, 3} {
		if _, _, err := (Scenario{Version: v, Workflow: WorkflowSection{Name: "1deg"}}).Resolve(); err == nil {
			t.Errorf("version %d accepted", v)
		}
	}
}

func TestScenarioResolveAllSections(t *testing.T) {
	s := Scenario{
		Version:  2,
		Workflow: WorkflowSection{Name: "2deg"},
		Fleet:    &FleetSection{Processors: 16, Reliable: 4},
		Storage:  &StorageSection{Mode: "cleanup", BandwidthMbps: 100},
		Pricing:  &PricingSection{Billing: "provisioned", CPUPerHour: 0.25, Granularity: "per-hour"},
		Spot:     &SpotSection{RatePerHour: 1.5, Seed: 7, Discount: 0.65},
		Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 5e8},
	}
	spec, plan, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "montage-2deg" {
		t.Errorf("spec = %q", spec.Name)
	}
	if plan.Mode != datamgmt.Cleanup || plan.Processors != 16 || plan.Billing != core.Provisioned ||
		plan.Bandwidth != units.Mbps(100) {
		t.Errorf("plan knobs not applied: %+v", plan)
	}
	if plan.Pricing.CPUPerHour != 0.25 || plan.Pricing.Granularity != cost.PerHour ||
		plan.Pricing.StoragePerGBMonth != cost.Amazon2008().StoragePerGBMonth {
		t.Errorf("pricing overrides wrong: %+v", plan.Pricing)
	}
	wantSpot := core.SpotPlan{RatePerHour: 1.5, Warning: 120, Downtime: 600, Seed: 7, Discount: 0.65, OnDemand: 4}
	if plan.Spot != wantSpot {
		t.Errorf("spot plan = %+v, want %+v (defaults filled)", plan.Spot, wantSpot)
	}
	if !plan.Recovery.Checkpoint || plan.Recovery.Interval != 300 ||
		plan.Recovery.Overhead != 10 || plan.Recovery.Bytes != 5e8 {
		t.Errorf("recovery = %+v", plan.Recovery)
	}
}

func TestScenarioResolveCCR(t *testing.T) {
	spec, _, err := Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg", CCR: 0.4}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if spec.TargetCCR != 0.4 {
		t.Errorf("TargetCCR = %v, want 0.4", spec.TargetCCR)
	}
}

func TestScenarioResolveErrors(t *testing.T) {
	wf := WorkflowSection{Name: "1deg"}
	for name, s := range map[string]Scenario{
		"no workflow":            {Version: 2},
		"both selectors":         {Version: 2, Workflow: WorkflowSection{Name: "1deg", Degrees: 2}},
		"unknown workflow":       {Version: 2, Workflow: WorkflowSection{Name: "9deg"}},
		"negative degrees":       {Version: 2, Workflow: WorkflowSection{Degrees: -2}},
		"oversized degrees":      {Version: 2, Workflow: WorkflowSection{Degrees: 500}},
		"negative ccr":           {Version: 2, Workflow: WorkflowSection{Name: "1deg", CCR: -1}},
		"bad mode":               {Version: 2, Workflow: wf, Storage: &StorageSection{Mode: "sideways"}},
		"negative bandwidth":     {Version: 2, Workflow: wf, Storage: &StorageSection{BandwidthMbps: -10}},
		"bad billing":            {Version: 2, Workflow: wf, Pricing: &PricingSection{Billing: "prepaid"}},
		"bad granularity":        {Version: 2, Workflow: wf, Pricing: &PricingSection{Granularity: "per-minute"}},
		"negative rate":          {Version: 2, Workflow: wf, Pricing: &PricingSection{CPUPerHour: -1}},
		"negative processors":    {Version: 2, Workflow: wf, Fleet: &FleetSection{Processors: -1}},
		"negative reliable":      {Version: 2, Workflow: wf, Fleet: &FleetSection{Reliable: -1}},
		"reliable over fleet":    {Version: 2, Workflow: wf, Fleet: &FleetSection{Processors: 4, Reliable: 5}},
		"no spot capacity":       {Version: 2, Workflow: wf, Fleet: &FleetSection{Processors: 4, Reliable: 4}, Spot: &SpotSection{RatePerHour: 1}},
		"negative spot rate":     {Version: 2, Workflow: wf, Spot: &SpotSection{RatePerHour: -1}},
		"negative warning":       {Version: 2, Workflow: wf, Spot: &SpotSection{RatePerHour: 1, WarningSeconds: -1}},
		"negative downtime":      {Version: 2, Workflow: wf, Spot: &SpotSection{RatePerHour: 1, DowntimeSeconds: -1}},
		"bad discount":           {Version: 2, Workflow: wf, Spot: &SpotSection{RatePerHour: 1, Discount: 1}},
		"negative checkpoint":    {Version: 2, Workflow: wf, Recovery: &RecoverySection{CheckpointSeconds: -1}},
		"overhead without ckpt":  {Version: 2, Workflow: wf, Recovery: &RecoverySection{CheckpointOverheadSeconds: 5}},
		"bytes without ckpt":     {Version: 2, Workflow: wf, Recovery: &RecoverySection{CheckpointBytes: 100}},
		"negative ckpt bytes":    {Version: 2, Workflow: wf, Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointBytes: -1}},
		"negative ckpt overhead": {Version: 2, Workflow: wf, Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: -1}},
		"negative storage rate":  {Version: 2, Workflow: wf, Pricing: &PricingSection{StoragePerGBMonth: -0.1}},
		"negative transfer-in":   {Version: 2, Workflow: wf, Pricing: &PricingSection{TransferInPerGB: -0.1}},
		"negative transfer-out":  {Version: 2, Workflow: wf, Pricing: &PricingSection{TransferOutPerGB: -0.1}},
	} {
		if _, _, err := s.Resolve(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestScenarioResolveZeroSections pins the sweep-critical property that
// a section whose knobs are all zero resolves exactly like an absent
// one: an axis sweeping spot.rate_per_hour or
// recovery.checkpoint_seconds down to their documented-valid zero
// values must not 400 the whole grid.
func TestScenarioResolveZeroSections(t *testing.T) {
	base := Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg"}}
	_, want, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	zeroed := Scenario{
		Version:  2,
		Workflow: WorkflowSection{Name: "1deg"},
		Spot:     &SpotSection{},
		Recovery: &RecoverySection{},
	}
	_, got, err := zeroed.Resolve()
	if err != nil {
		t.Fatalf("zero-valued sections rejected: %v", err)
	}
	if got.Spot != want.Spot || got.Recovery != want.Recovery {
		t.Errorf("zero-valued sections resolved differently: spot %+v recovery %+v", got.Spot, got.Recovery)
	}

	// The reviewer's reproduction: a spot axis over a base with no spot
	// section, swept through 0.
	req := SweepRequest{
		Scenario: Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg"}, Fleet: &FleetSection{Processors: 4}},
		Axes:     []Axis{{Path: "spot.rate_per_hour", Values: []any{0.0, 0.5}}},
	}
	points, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if _, _, err := p.Scenario.Resolve(); err != nil {
			t.Errorf("grid point %d does not resolve: %v", i, err)
		}
	}
}

// TestEchoScenarioRoundTrips pins the echo contract: the scenario a v2
// document echoes back resolves to exactly the spec and plan it
// reports, so any response is re-POSTable.
func TestEchoScenarioRoundTrips(t *testing.T) {
	for name, s := range map[string]Scenario{
		"baseline": {Version: 2, Workflow: WorkflowSection{Name: "1deg"}},
		"custom":   {Version: 2, Workflow: WorkflowSection{Degrees: 3}},
		"ccr":      {Version: 2, Workflow: WorkflowSection{Name: "1deg", CCR: 0.4}},
		"full": {
			Version:  2,
			Workflow: WorkflowSection{Name: "1deg"},
			Fleet:    &FleetSection{Processors: 16, Reliable: 4},
			Storage:  &StorageSection{Mode: "cleanup", BandwidthMbps: 100},
			Pricing:  &PricingSection{Billing: "provisioned", CPUPerHour: 0.25},
			Spot:     &SpotSection{RatePerHour: 1.5, Seed: 7, Discount: 0.65},
			Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 5e8},
		},
	} {
		t.Run(name, func(t *testing.T) {
			spec, plan, err := s.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			echo := EchoScenario(spec, plan)
			spec2, plan2, err := echo.Resolve()
			if err != nil {
				t.Fatalf("echo does not resolve: %v", err)
			}
			if spec2 != spec {
				t.Errorf("echo spec = %+v, want %+v", spec2, spec)
			}
			if plan2.Mode != plan.Mode || plan2.Processors != plan.Processors ||
				plan2.Billing != plan.Billing || plan2.Bandwidth != plan.Bandwidth ||
				plan2.Pricing != plan.Pricing || plan2.Spot != plan.Spot ||
				plan2.Recovery != plan.Recovery {
				t.Errorf("echo plan = %+v, want %+v", plan2, plan)
			}
			if CanonicalRunKeyV2(spec2, plan2) != CanonicalRunKeyV2(spec, plan) {
				t.Error("echo resolves to a different cache key")
			}
		})
	}
}

func TestDecodeStrictRejectsUnknownFields(t *testing.T) {
	for name, body := range map[string]string{
		"top level":      `{"version": 2, "workflow": {"name": "1deg"}, "wokflow": {}}`,
		"nested section": `{"version": 2, "workflow": {"name": "1deg"}, "spot": {"rate_per_hr": 1}}`,
		"trailing data":  `{"version": 2, "workflow": {"name": "1deg"}} {"extra": true}`,
	} {
		var s Scenario
		if err := DecodeStrict(strings.NewReader(body), &s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	var s Scenario
	if err := DecodeStrict(strings.NewReader(`{"version": 2, "workflow": {"name": "1deg"}}`), &s); err != nil {
		t.Errorf("clean document rejected: %v", err)
	}
}
