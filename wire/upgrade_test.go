package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/montage"
)

var update = flag.Bool("update", false, "rewrite the golden wire fixtures")

// v1Fixtures spans the legacy surface: every request family the v1
// schema can express.
var v1Fixtures = map[string]RunRequest{
	"baseline":    {Workflow: "1deg"},
	"provisioned": {Workflow: "1deg", Mode: "cleanup", Processors: 16, Billing: "provisioned", BandwidthMbps: 100},
	"degrees":     {Degrees: 0.5},
	"spot": {Workflow: "1deg", Processors: 16, Spot: &SpotRequest{
		RatePerHour: 1.5, Seed: 7, Discount: 0.65, OnDemandProcessors: 4,
		CheckpointSeconds: 300, CheckpointOverheadSeconds: 10}},
	"calm-mixed": {Workflow: "1deg", Processors: 8, Spot: &SpotRequest{OnDemandProcessors: 2, Discount: 0.5}},
}

// v2Fixtures exercises what only the v2 schema can say.
var v2Fixtures = map[string]Scenario{
	"baseline": {Version: 2, Workflow: WorkflowSection{Name: "1deg"}},
	"full": {
		Version:  2,
		Workflow: WorkflowSection{Name: "1deg"},
		Fleet:    &FleetSection{Processors: 16, Reliable: 4},
		Storage:  &StorageSection{Mode: "regular", BandwidthMbps: 100},
		Pricing:  &PricingSection{Billing: "on-demand", CPUPerHour: 0.25},
		Spot:     &SpotSection{RatePerHour: 1.5, Seed: 7, Discount: 0.65},
		Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 5e8},
	},
	"ccr": {Version: 2, Workflow: WorkflowSection{Name: "1deg", CCR: 0.4},
		Fleet: &FleetSection{Processors: 8}, Pricing: &PricingSection{Billing: "provisioned"}},
}

// TestUpgradeScenarioShape pins the v1 -> v2 field mapping.
func TestUpgradeScenarioShape(t *testing.T) {
	got := v1Fixtures["spot"].Scenario()
	want := Scenario{
		Version:  2,
		Workflow: WorkflowSection{Name: "1deg"},
		Fleet:    &FleetSection{Processors: 16, Reliable: 4},
		Spot:     &SpotSection{RatePerHour: 1.5, Seed: 7, Discount: 0.65},
		Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("upgraded scenario = %+v, want %+v", got, want)
	}
}

// TestUpgradeByteIdentity is the adapter proof of the acceptance
// criterion: a v1 request and its upgraded v2 scenario resolve to the
// same (spec, plan) and therefore produce byte-identical v1 result
// documents.
func TestUpgradeByteIdentity(t *testing.T) {
	for name, req := range v1Fixtures {
		t.Run(name, func(t *testing.T) {
			spec1, plan1, err := req.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			spec2, plan2, err := req.Scenario().Resolve()
			if err != nil {
				t.Fatalf("upgraded scenario does not resolve: %v", err)
			}
			if spec1 != spec2 {
				t.Fatalf("specs differ: %+v vs %+v", spec1, spec2)
			}
			if !reflect.DeepEqual(plan1, plan2) {
				t.Fatalf("plans differ: %+v vs %+v", plan1, plan2)
			}
			a := runDoc(t, spec1, plan1)
			b := runDoc(t, spec2, plan2)
			if !bytes.Equal(a, b) {
				t.Error("v1 and upgraded-v2 result documents differ")
			}
		})
	}
}

func runDoc(t *testing.T, spec montage.Spec, plan core.Plan) []byte {
	t.Helper()
	wf, err := montage.Cached(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	body, err := NewRunDocument(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestGoldenDocuments pins the marshaled wire documents of both schema
// versions against checked-in fixtures: any unintended byte-level drift
// in the run documents (field renames, ordering, number formatting)
// fails here first.  Regenerate intentionally with -update.
func TestGoldenDocuments(t *testing.T) {
	for name, req := range v1Fixtures {
		t.Run("v1/"+name, func(t *testing.T) {
			spec, plan, err := req.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "v1_"+name+".golden.json"), runDoc(t, spec, plan))
		})
	}
	for name, sc := range v2Fixtures {
		t.Run("v2/"+name, func(t *testing.T) {
			spec, plan, err := sc.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			wf, err := montage.Cached(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(wf, plan)
			if err != nil {
				t.Fatal(err)
			}
			body, err := NewRunDocumentV2(spec, res).Encode()
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "v2_"+name+".golden.json"), body)
		})
	}
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run go test ./wire -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("document drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
}
