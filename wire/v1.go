package wire

// The frozen v1 wire schema.  RunRequest is the original flat request
// the service launched with: top-level knobs plus a bolted-on spot
// sub-object.  It is deprecated in favour of the v2 Scenario; /v1
// endpoints keep accepting it, but resolution is implemented by
// upgrading into v2 (RunRequest.Scenario) so the legacy surface can
// never drift from the current one.  The upgrade is proven lossless by
// the byte-identity tests in upgrade_test.go.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/montage"
)

// RunRequest is the v1 wire form of one simulation request: a workflow
// selector plus the plan knobs a caller may turn.  The zero value of
// every plan field reproduces the paper's baseline (regular mode, full
// parallelism, on-demand billing, 10 Mbps).
//
// Deprecated: new callers should POST a v2 Scenario to /v2/run.
type RunRequest struct {
	// Workflow selects a preset: 1deg, 2deg or 4deg (the full
	// montage-Ndeg names are accepted too).  Empty selects a custom
	// mosaic via Degrees.
	Workflow string `json:"workflow,omitempty"`
	// Degrees sizes a custom mosaic when Workflow is empty.
	Degrees float64 `json:"degrees,omitempty"`

	// Mode is the data-management model: remote-io, regular or cleanup.
	Mode string `json:"mode,omitempty"`
	// Processors provisioned; 0 means enough for full parallelism.
	Processors int `json:"processors,omitempty"`
	// Billing is provisioned or on-demand.
	Billing string `json:"billing,omitempty"`
	// BandwidthMbps is the user<->cloud link speed; 0 means the paper's
	// 10 Mbps.
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`

	// Spot, when present, simulates a custom spot scenario: seeded
	// per-instance capacity reclaims, optionally on a mixed fleet with
	// checkpoint/restart recovery.  Absent reproduces reliable capacity.
	Spot *SpotRequest `json:"spot,omitempty"`
}

// SpotRequest is the v1 wire form of a spot scenario: the market knobs,
// a fleet split, and the recovery policy, flattened into one object.
//
// Deprecated: v2 scenarios split these across the fleet, spot and
// recovery sections.
type SpotRequest struct {
	// RatePerHour is each spot instance's reclaim intensity; 0 disables
	// revocations (useful to price a mixed fleet under a calm market).
	RatePerHour float64 `json:"rate_per_hour,omitempty"`
	// WarningSeconds is the reclaim notice lead; 0 defaults to EC2's
	// 120 s when revocations are enabled.
	WarningSeconds float64 `json:"warning_seconds,omitempty"`
	// DowntimeSeconds is how long reclaimed capacity stays gone; 0
	// defaults to 600 s when revocations are enabled.
	DowntimeSeconds float64 `json:"downtime_seconds,omitempty"`
	// Seed drives the deterministic revocation sampling.
	Seed int64 `json:"seed,omitempty"`
	// Discount is the fraction taken off the on-demand CPU rate for
	// spot capacity, in [0, 1).
	Discount float64 `json:"discount,omitempty"`
	// OnDemandProcessors is the reliable sub-pool of a mixed fleet:
	// never reclaimed, billed at the full rate, and hosting the
	// critical-path tasks.
	OnDemandProcessors int `json:"on_demand_processors,omitempty"`
	// CheckpointSeconds enables checkpoint/restart recovery with this
	// interval of useful compute between checkpoints; 0 re-runs
	// preempted tasks from scratch.
	CheckpointSeconds float64 `json:"checkpoint_seconds,omitempty"`
	// CheckpointOverheadSeconds is the wall-clock cost of writing one
	// checkpoint.
	CheckpointOverheadSeconds float64 `json:"checkpoint_overhead_seconds,omitempty"`
}

// Scenario upgrades the flat v1 request into the versioned v2 document:
// the one mapping between the two schemas.  The upgrade is lossless --
// resolving the upgraded scenario produces exactly the spec and plan
// the v1 request describes (and Resolve is implemented that way).
func (r RunRequest) Scenario() Scenario {
	s := Scenario{
		Version:  Version,
		Workflow: WorkflowSection{Name: r.Workflow, Degrees: r.Degrees},
	}
	if r.Processors != 0 {
		s.Fleet = &FleetSection{Processors: r.Processors}
	}
	if r.Mode != "" || r.BandwidthMbps != 0 {
		s.Storage = &StorageSection{Mode: r.Mode, BandwidthMbps: r.BandwidthMbps}
	}
	if r.Billing != "" {
		s.Pricing = &PricingSection{Billing: r.Billing}
	}
	if sp := r.Spot; sp != nil {
		if sp.OnDemandProcessors != 0 {
			if s.Fleet == nil {
				s.Fleet = &FleetSection{}
			}
			s.Fleet.Reliable = sp.OnDemandProcessors
		}
		market := SpotSection{
			RatePerHour:     sp.RatePerHour,
			WarningSeconds:  sp.WarningSeconds,
			DowntimeSeconds: sp.DowntimeSeconds,
			Seed:            sp.Seed,
			Discount:        sp.Discount,
		}
		if market != (SpotSection{}) {
			s.Spot = &market
		}
		if sp.CheckpointSeconds != 0 || sp.CheckpointOverheadSeconds != 0 {
			s.Recovery = &RecoverySection{
				CheckpointSeconds:         sp.CheckpointSeconds,
				CheckpointOverheadSeconds: sp.CheckpointOverheadSeconds,
			}
		}
	}
	return s
}

// Resolve turns the v1 request into a concrete spec and plan by
// upgrading it into a v2 scenario first: the legacy surface is a thin
// adapter over the current one.  Only the constraints the v1 shape
// itself imposes are checked here.
func (r RunRequest) Resolve() (montage.Spec, core.Plan, error) {
	if r.Spot != nil && *r.Spot == (SpotRequest{}) {
		return montage.Spec{}, core.Plan{}, fmt.Errorf("wire: empty spot request (set rate_per_hour, on_demand_processors or checkpoint_seconds)")
	}
	return r.Scenario().Resolve()
}
