package wire

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/montage"
	"repro/internal/policy"
)

// TestCanonicalRunKeyCoverage forces key maintenance: the explicit
// encoding must be extended whenever any struct feeding it grows a
// field, or new knobs would silently collide in the result cache.
func TestCanonicalRunKeyCoverage(t *testing.T) {
	for name, tc := range map[string]struct {
		typ  reflect.Type
		want int
	}{
		// core.Plan's 16th field, Recorder, is deliberately NOT part of
		// the key: the flight recorder is a pure observer, so a traced
		// and an untraced run of the same plan are the same result.
		"core.Plan":     {reflect.TypeOf(core.Plan{}), 16},
		"montage.Spec":  {reflect.TypeOf(montage.Spec{}), 9},
		"core.SpotPlan": {reflect.TypeOf(core.SpotPlan{}), 6},
		"exec.Recovery": {reflect.TypeOf(exec.Recovery{}), 4},
		"cost.Pricing":  {reflect.TypeOf(cost.Pricing{}), 5},
		"policy.Bundle": {reflect.TypeOf(policy.Bundle{}), 4},
	} {
		if n := tc.typ.NumField(); n != tc.want {
			t.Errorf("%s has %d fields; update CanonicalRunKey and this count (want %d)", name, n, tc.want)
		}
	}
}

// TestCanonicalRunKeyV2Distinct: the v1 and v2 key spaces must never
// collide -- they cache different document shapes for the same run.
func TestCanonicalRunKeyV2Distinct(t *testing.T) {
	spec, plan, err := (Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg"}}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	v1 := CanonicalRunKey(spec, plan)
	v2 := CanonicalRunKeyV2(spec, plan)
	if v1 == v2 {
		t.Fatal("v1 and v2 cache keys collide")
	}
	if !strings.HasSuffix(v2, v1) {
		t.Errorf("v2 key is not a versioned wrapper of the v1 key: %q", v2)
	}
}

// TestCanonicalRunKeyNewKnobsDistinct: every knob added in this schema
// revision must perturb the key, or the cache would serve one
// scenario's document for another.
func TestCanonicalRunKeyNewKnobsDistinct(t *testing.T) {
	base := Scenario{
		Version:  2,
		Workflow: WorkflowSection{Name: "1deg"},
		Fleet:    &FleetSection{Processors: 16, Reliable: 4},
		Spot:     &SpotSection{RatePerHour: 1, Seed: 1, Discount: 0.5},
		Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 1e8},
	}
	spec, plan, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	baseKey := CanonicalRunKeyV2(spec, plan)
	for name, mutate := range map[string]func(Scenario) (Scenario, error){
		"checkpoint bytes": func(s Scenario) (Scenario, error) { return s.With("recovery.checkpoint_bytes", 2e8) },
		"workflow ccr":     func(s Scenario) (Scenario, error) { return s.With("workflow.ccr", 0.3) },
		"cpu rate":         func(s Scenario) (Scenario, error) { return s.With("pricing.cpu_per_hour", 0.2) },
		"granularity":      func(s Scenario) (Scenario, error) { return s.With("pricing.granularity", "per-hour") },
		"fleet split":      func(s Scenario) (Scenario, error) { return s.With("fleet.reliable", 8) },
		"placement policy": func(s Scenario) (Scenario, error) { return s.With("policies.placement", "heft") },
		"victim policy":    func(s Scenario) (Scenario, error) { return s.With("policies.victim", "cost-aware") },
		"ckpt policy":      func(s Scenario) (Scenario, error) { return s.With("policies.checkpoint", "adaptive") },
		"sizing policy":    func(s Scenario) (Scenario, error) { return s.With("policies.sizing", "half") },
	} {
		mutated, err := mutate(base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mspec, mplan, err := mutated.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if CanonicalRunKeyV2(mspec, mplan) == baseKey {
			t.Errorf("scenarios differing only in %s share a cache key", name)
		}
	}
}
