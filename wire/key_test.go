package wire

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/lint/nokey"
	"repro/internal/montage"
	"repro/internal/policy"
)

// TestCanonicalRunKeyCoverage forces key maintenance field by field:
// every exported field of every struct feeding the canonical key must
// either appear as a selector in key.go or carry the //repro:nokey
// annotation the keycomplete analyzer also reads.  Unlike the retired
// reflect.NumField count guards, a failure names the missing field --
// and a field that is both annotated and encoded fails too, because a
// stale exclusion is as wrong as a missing encoding.
func TestCanonicalRunKeyCoverage(t *testing.T) {
	fset := token.NewFileSet()
	encoded := keyFileSelectors(t, fset)

	for _, tc := range []struct {
		typ reflect.Type
		dir string
	}{
		{reflect.TypeOf(core.Plan{}), "../internal/core"},
		{reflect.TypeOf(core.SpotPlan{}), "../internal/core"},
		{reflect.TypeOf(montage.Spec{}), "../internal/montage"},
		{reflect.TypeOf(exec.Recovery{}), "../internal/exec"},
		{reflect.TypeOf(cost.Pricing{}), "../internal/cost"},
		{reflect.TypeOf(policy.Bundle{}), "../internal/policy"},
	} {
		name := tc.typ.Name()
		anns, err := nokey.ParseDir(fset, tc.dir)
		if err != nil {
			t.Fatalf("%s: parsing %s: %v", name, tc.dir, err)
		}
		for _, p := range anns.Problems() {
			t.Errorf("%s: %s", fset.Position(p.Pos), p.Message)
		}
		for i := 0; i < tc.typ.NumField(); i++ {
			f := tc.typ.Field(i)
			if !f.IsExported() {
				continue
			}
			_, excluded := anns.Excluded(name, f.Name)
			switch {
			case excluded && encoded[f.Name]:
				t.Errorf("%s.%s carries //repro:nokey but key.go references it; drop the stale annotation or the encoding", name, f.Name)
			case !excluded && !encoded[f.Name]:
				t.Errorf("%s.%s is not encoded in CanonicalRunKey and has no //repro:nokey annotation; extend the key or annotate the exclusion", name, f.Name)
			}
		}
	}
}

// keyFileSelectors collects every selector name key.go mentions -- the
// syntactic approximation of "encoded" this test shares with the
// keycomplete analyzer's type-checked version.
func keyFileSelectors(t *testing.T, fset *token.FileSet) map[string]bool {
	t.Helper()
	f, err := parser.ParseFile(fset, "key.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}

// TestCanonicalRunKeyV2Distinct: the v1 and v2 key spaces must never
// collide -- they cache different document shapes for the same run.
func TestCanonicalRunKeyV2Distinct(t *testing.T) {
	spec, plan, err := (Scenario{Version: 2, Workflow: WorkflowSection{Name: "1deg"}}).Resolve()
	if err != nil {
		t.Fatal(err)
	}
	v1 := CanonicalRunKey(spec, plan)
	v2 := CanonicalRunKeyV2(spec, plan)
	if v1 == v2 {
		t.Fatal("v1 and v2 cache keys collide")
	}
	if !strings.HasSuffix(v2, v1) {
		t.Errorf("v2 key is not a versioned wrapper of the v1 key: %q", v2)
	}
}

// TestCanonicalRunKeyNewKnobsDistinct: every knob added in this schema
// revision must perturb the key, or the cache would serve one
// scenario's document for another.
func TestCanonicalRunKeyNewKnobsDistinct(t *testing.T) {
	base := Scenario{
		Version:  2,
		Workflow: WorkflowSection{Name: "1deg"},
		Fleet:    &FleetSection{Processors: 16, Reliable: 4},
		Spot:     &SpotSection{RatePerHour: 1, Seed: 1, Discount: 0.5},
		Recovery: &RecoverySection{CheckpointSeconds: 300, CheckpointOverheadSeconds: 10, CheckpointBytes: 1e8},
	}
	spec, plan, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	baseKey := CanonicalRunKeyV2(spec, plan)
	for name, mutate := range map[string]func(Scenario) (Scenario, error){
		"checkpoint bytes": func(s Scenario) (Scenario, error) { return s.With("recovery.checkpoint_bytes", 2e8) },
		"workflow ccr":     func(s Scenario) (Scenario, error) { return s.With("workflow.ccr", 0.3) },
		"cpu rate":         func(s Scenario) (Scenario, error) { return s.With("pricing.cpu_per_hour", 0.2) },
		"granularity":      func(s Scenario) (Scenario, error) { return s.With("pricing.granularity", "per-hour") },
		"fleet split":      func(s Scenario) (Scenario, error) { return s.With("fleet.reliable", 8) },
		"placement policy": func(s Scenario) (Scenario, error) { return s.With("policies.placement", "heft") },
		"victim policy":    func(s Scenario) (Scenario, error) { return s.With("policies.victim", "cost-aware") },
		"ckpt policy":      func(s Scenario) (Scenario, error) { return s.With("policies.checkpoint", "adaptive") },
		"sizing policy":    func(s Scenario) (Scenario, error) { return s.With("policies.sizing", "half") },
	} {
		mutated, err := mutate(base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mspec, mplan, err := mutated.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if CanonicalRunKeyV2(mspec, mplan) == baseKey {
			t.Errorf("scenarios differing only in %s share a cache key", name)
		}
	}
}
