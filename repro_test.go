package repro

import (
	"math"
	"testing"
)

// The facade-level tests double as integration tests: the full pipeline
// (generate -> simulate -> price -> analyze) through the public API.

func TestQuickstartFlow(t *testing.T) {
	wf, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	if wf.NumTasks() != 203 {
		t.Fatalf("tasks = %d, want 203", wf.NumTasks())
	}
	res, err := Run(wf, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Cost.CPU)-0.56) > 1e-6 {
		t.Errorf("CPU cost = %v, want $0.56", res.Cost.CPU)
	}
	if res.Cost.Total() <= res.Cost.CPU {
		t.Error("total must exceed CPU cost")
	}
}

func TestProvisioningFlow(t *testing.T) {
	wf, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	points, err := ProvisioningSweep(wf, GeometricProcessors(), DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8", len(points))
	}
	// The paper's headline trade-off: cheapest at 1 processor, fastest at
	// 128.
	cheapest, fastest := points[0], points[0]
	for _, p := range points {
		if p.Result.Cost.Total() < cheapest.Result.Cost.Total() {
			cheapest = p
		}
		if p.Result.Metrics.ExecTime < fastest.Result.Metrics.ExecTime {
			fastest = p
		}
	}
	if cheapest.Processors != 1 {
		t.Errorf("cheapest pool = %d procs, want 1", cheapest.Processors)
	}
	// 128 processors must be at least as fast as any pool (pools past the
	// level width can tie).
	if points[7].Result.Metrics.ExecTime > fastest.Result.Metrics.ExecTime {
		t.Errorf("128-proc time %v slower than fastest %v (%d procs)",
			points[7].Result.Metrics.ExecTime, fastest.Result.Metrics.ExecTime, fastest.Processors)
	}
}

func TestModeComparisonFlow(t *testing.T) {
	wf, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareModes(wf, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("modes = %d, want 3", len(results))
	}
	if !(results[RemoteIO].Cost.Total() > results[Cleanup].Cost.Total()) {
		t.Error("remote I/O should cost more than cleanup")
	}
}

func TestArchiveFlow(t *testing.T) {
	wf, err := Generate(TwoDegree())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(wf, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	be, err := ComputeBreakEven(Amazon2008(), TwoMASSArchiveBytes, res.Cost)
	if err != nil {
		t.Fatal(err)
	}
	if float64(be.MonthlyStorageCost) != 1800 {
		t.Errorf("monthly = %v, want $1800", be.MonthlyStorageCost)
	}
	h, err := ComputeStorageHorizon(Amazon2008(), wf.OutputBytes(), res.Cost.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if h.Months < 20 || h.Months > 27 {
		t.Errorf("horizon = %.2f months, want ~24", h.Months)
	}
	sky, err := ComputeSkyCampaign(res.Cost, WholeSky4DegMosaics)
	if err != nil {
		t.Fatal(err)
	}
	if sky.TotalCost <= 0 {
		t.Error("sky campaign cost not positive")
	}
}

func TestCCRFlow(t *testing.T) {
	wf, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Processors = 8
	plan.Billing = Provisioned
	points, err := CCRSweep(wf, []float64{0.053, 0.106}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[1].Result.Cost.Total() <= points[0].Result.Cost.Total() {
		t.Error("CCR sweep not increasing")
	}
}

func TestCustomPricing(t *testing.T) {
	// The paper's closing speculation: providers with cheap compute and
	// expensive storage (or vice versa) change which plan wins.  Verify
	// the library supports alternative schedules end to end.
	wf, err := Generate(OneDegree())
	if err != nil {
		t.Fatal(err)
	}
	plan := DefaultPlan()
	plan.Pricing = Pricing{
		StoragePerGBMonth: 1.50, // 10x storage
		TransferInPerGB:   0.01,
		TransferOutPerGB:  0.016,
		CPUPerHour:        0.10,
	}
	res, err := Run(wf, plan)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(wf, DefaultPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cost.Storage > base.Cost.Storage) {
		t.Error("10x storage rate did not raise storage cost")
	}
	if !(res.Cost.TransferIn < base.Cost.TransferIn) {
		t.Error("cheaper transfer rate did not lower transfer cost")
	}
}

func TestMbpsHelper(t *testing.T) {
	if Mbps(10).BytesPerSecond() != 1.25e6 {
		t.Errorf("Mbps(10) = %v B/s, want 1.25e6", Mbps(10).BytesPerSecond())
	}
}
