# Repro build/test entry points.  Everything here is plain Go tooling;
# the scripts under scripts/ are POSIX sh.

GO ?= go

.PHONY: build test vet race bench smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet the whole module; the CI gate alongside test.
vet:
	$(GO) vet ./...

# race-test the packages with concurrent internals that the policy
# seams thread through: the executor and the policy registries.
race:
	$(GO) test -race ./internal/exec/ ./internal/policy/

# bench runs the executor and event-engine benchmark suites with
# repeats (BENCH_COUNT, default 3) and writes BENCH_exec.json at the
# repo root.
bench:
	sh scripts/bench.sh

# smoke boots reprosrv, POSTs a two-bundle policy tournament and
# asserts the NDJSON ranking envelope.
smoke:
	sh scripts/smoke_tournament.sh

check: build vet test race smoke
