# Repro build/test entry points.  Everything here is plain Go tooling;
# the scripts under scripts/ are POSIX sh.

GO ?= go

.PHONY: build test vet race bench bench-check smoke smoke-trace check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet the whole module; the CI gate alongside test.
vet:
	$(GO) vet ./...

# race-test the packages with concurrent internals that the policy
# seams thread through: the executor and the policy registries.
race:
	$(GO) test -race ./internal/exec/ ./internal/policy/

# bench runs the executor and event-engine benchmark suites with
# repeats (BENCH_COUNT, default 3) and writes BENCH_exec.json at the
# repo root.
bench:
	sh scripts/bench.sh

# bench-check is the benchmark-regression gate: re-run the suites and
# fail if any benchmark's mean ns/op regressed more than 25% against
# the committed BENCH_exec.json baseline.
bench-check:
	sh scripts/bench.sh -check

# smoke boots reprosrv, POSTs a two-bundle policy tournament and
# asserts the NDJSON ranking envelope.
smoke:
	sh scripts/smoke_tournament.sh

# smoke-trace boots reprosrv, runs a traced spot scenario through both
# /v2/run surfaces and checks the telemetry families on /metrics.
smoke-trace:
	sh scripts/smoke_trace.sh

check: build vet test race smoke smoke-trace
