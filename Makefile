# Repro build/test entry points.  Everything here is plain Go tooling;
# the scripts under scripts/ are POSIX sh.

GO ?= go

.PHONY: build test vet lint lint-vet race bench bench-check smoke smoke-trace smoke-store check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet the whole module; the CI gate alongside test.
vet:
	$(GO) vet ./...

# lint runs cmd/reprolint, the repo's own eight-analyzer suite:
# keycomplete, determinism, strictdecode, nilrecorder, ctxflow,
# goroleak, streamdone and hotpath (see README, "Static analysis").
# Any finding fails the build; -timings prints per-analyzer wall time
# to stderr so a slow analyzer is visible in CI logs.
lint:
	$(GO) run ./cmd/reprolint -timings ./...

# lint-vet runs the same suite through `go vet -vettool=`, proving the
# tool still speaks cmd/go's unit-checking protocol.
lint-vet:
	$(GO) build -o $(CURDIR)/.reprolint.bin ./cmd/reprolint
	$(GO) vet -vettool=$(CURDIR)/.reprolint.bin ./...
	rm -f $(CURDIR)/.reprolint.bin

# race-test every package with concurrent internals: the executor and
# policy registries, plus the server, sweep engine and the packages
# their request paths thread through.
race:
	$(GO) test -race ./internal/exec/ ./internal/policy/ ./internal/server/ ./internal/store/ ./internal/shard/ ./internal/sweep/ ./internal/montage/ ./internal/experiments/ ./internal/core/ ./internal/advisor/ ./cmd/reprosrv/ ./cmd/montagesim/ ./wire/

# bench runs the benchmark suites with repeats (BENCH_COUNT, default 3)
# and writes one baseline per suite at the repo root: BENCH_exec.json
# (executor + event engine), BENCH_sweep.json (sweep-engine kernel) and
# BENCH_store.json (disk-store put/get/scan).
bench:
	sh scripts/bench.sh

# bench-check is the benchmark-regression gate: re-run the suites and
# fail if any benchmark's mean ns/op regressed more than 25% against
# any committed BENCH_*.json baseline.
bench-check:
	sh scripts/bench.sh -check

# smoke boots reprosrv, POSTs a two-bundle policy tournament and
# asserts the NDJSON ranking envelope.
smoke:
	sh scripts/smoke_tournament.sh

# smoke-trace boots reprosrv, runs a traced spot scenario through both
# /v2/run surfaces and checks the telemetry families on /metrics.
smoke-trace:
	sh scripts/smoke_trace.sh

# smoke-store boots reprosrv with a store directory, computes a run,
# restarts over the same directory and asserts the warm daemon serves
# the identical bytes from disk without re-simulating; then boots a
# two-replica peered pool and asserts a sharded sweep streams the same
# bytes as a standalone daemon.
smoke-store:
	sh scripts/smoke_store.sh

check: build vet lint test race smoke smoke-trace smoke-store
