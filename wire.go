package repro

// The wire layer lives in package repro/wire: versioned JSON request
// and result documents (the flat v1 RunRequest and the declarative v2
// Scenario), the any-axis sweep grid, and the canonical cache keys.
// These aliases keep the original v1 surface importable straight from
// the facade; new code -- and anything touching v2 scenarios or sweeps
// -- should import repro/wire directly.

import (
	"repro/wire"
)

type (
	// RunRequest is the v1 wire form of one simulation request.
	//
	// Deprecated: POST a wire.Scenario to /v2/run instead.
	RunRequest = wire.RunRequest
	// SpotRequest is the v1 wire form of a spot scenario.
	//
	// Deprecated: v2 scenarios split these knobs across the fleet, spot
	// and recovery sections.
	SpotRequest = wire.SpotRequest
	// PlanDocument is the v1 wire form of the executed plan.
	PlanDocument = wire.PlanDocument
	// SpotPlanDocument is the v1 wire form of the executed spot scenario.
	SpotPlanDocument = wire.SpotPlanDocument
	// RunDocument is the v1 machine-readable result of one simulation.
	RunDocument = wire.RunDocument
	// Scenario is the declarative v2 scenario document: the single
	// source of truth POST /v2/run, /v2/sweep, montagesim -scenario and
	// the experiment grids all consume.
	Scenario = wire.Scenario
)

// NewRunDocument builds the v1 wire document for a finished run.
func NewRunDocument(res Result) RunDocument { return wire.NewRunDocument(res) }

// CanonicalRunKey derives a stable cache key for a (spec, plan) pair;
// equal keys guarantee byte-identical result documents.
func CanonicalRunKey(spec Spec, plan Plan) string { return wire.CanonicalRunKey(spec, plan) }
