package repro

// This file is the wire layer of the facade: the JSON request and result
// documents a service (or a CLI talking to one) exchanges with the
// simulator, plus the canonical cache key that makes deterministic
// simulations cacheable.  cmd/reprosrv serves these documents over HTTP
// and cmd/montagesim -json emits the same document, so the two outputs
// can be diffed byte for byte.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/datamgmt"
	"repro/internal/exec"
	"repro/internal/units"
)

// RunRequest is the wire form of one simulation request: a workflow
// selector plus the plan knobs a caller may turn.  The zero value of
// every plan field reproduces the paper's baseline (regular mode, full
// parallelism, on-demand billing, 10 Mbps).
type RunRequest struct {
	// Workflow selects a preset: 1deg, 2deg or 4deg (the full
	// montage-Ndeg names are accepted too).  Empty selects a custom
	// mosaic via Degrees.
	Workflow string `json:"workflow,omitempty"`
	// Degrees sizes a custom mosaic when Workflow is empty.
	Degrees float64 `json:"degrees,omitempty"`

	// Mode is the data-management model: remote-io, regular or cleanup.
	Mode string `json:"mode,omitempty"`
	// Processors provisioned; 0 means enough for full parallelism.
	Processors int `json:"processors,omitempty"`
	// Billing is provisioned or on-demand.
	Billing string `json:"billing,omitempty"`
	// BandwidthMbps is the user<->cloud link speed; 0 means the paper's
	// 10 Mbps.
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`

	// Spot, when present, simulates a custom spot scenario: seeded
	// per-instance capacity reclaims, optionally on a mixed fleet with
	// checkpoint/restart recovery.  Absent reproduces reliable capacity.
	Spot *SpotRequest `json:"spot,omitempty"`
}

// SpotRequest is the wire form of a spot scenario: the market knobs, a
// fleet split, and the recovery policy.
type SpotRequest struct {
	// RatePerHour is each spot instance's reclaim intensity; 0 disables
	// revocations (useful to price a mixed fleet under a calm market).
	RatePerHour float64 `json:"rate_per_hour,omitempty"`
	// WarningSeconds is the reclaim notice lead; 0 defaults to EC2's
	// 120 s when revocations are enabled.
	WarningSeconds float64 `json:"warning_seconds,omitempty"`
	// DowntimeSeconds is how long reclaimed capacity stays gone; 0
	// defaults to 600 s when revocations are enabled.
	DowntimeSeconds float64 `json:"downtime_seconds,omitempty"`
	// Seed drives the deterministic revocation sampling.
	Seed int64 `json:"seed,omitempty"`
	// Discount is the fraction taken off the on-demand CPU rate for
	// spot capacity, in [0, 1).
	Discount float64 `json:"discount,omitempty"`
	// OnDemandProcessors is the reliable sub-pool of a mixed fleet:
	// never reclaimed, billed at the full rate, and hosting the
	// critical-path tasks.
	OnDemandProcessors int `json:"on_demand_processors,omitempty"`
	// CheckpointSeconds enables checkpoint/restart recovery with this
	// interval of useful compute between checkpoints; 0 re-runs
	// preempted tasks from scratch.
	CheckpointSeconds float64 `json:"checkpoint_seconds,omitempty"`
	// CheckpointOverheadSeconds is the wall-clock cost of writing one
	// checkpoint.
	CheckpointOverheadSeconds float64 `json:"checkpoint_overhead_seconds,omitempty"`
}

// maxRequestDegrees caps custom mosaic sizes on the wire.  Task count
// grows with sky area; the paper tops out at 4 degrees and the
// whole-sky tilings at 6, while an uncapped request could ask one cheap
// POST to materialize a multi-million-task DAG.
const maxRequestDegrees = 20

// Defaults filled into a spot request with revocations enabled.
const (
	defaultSpotWarningSeconds  = 120 // EC2's two-minute reclaim notice
	defaultSpotDowntimeSeconds = 600
)

// Resolve turns the wire request into a concrete spec and plan,
// rejecting anything malformed.  The returned plan is canonical
// (defaults filled in), so equal requests resolve to equal values.
func (r RunRequest) Resolve() (Spec, Plan, error) {
	var spec Spec
	switch {
	case r.Workflow != "" && r.Degrees != 0:
		return Spec{}, Plan{}, fmt.Errorf("repro: request names workflow %q and degrees %v; use one", r.Workflow, r.Degrees)
	case r.Workflow != "":
		switch strings.ToLower(r.Workflow) {
		case "1deg", "montage-1deg":
			spec = OneDegree()
		case "2deg", "montage-2deg":
			spec = TwoDegree()
		case "4deg", "montage-4deg":
			spec = FourDegree()
		default:
			return Spec{}, Plan{}, fmt.Errorf("repro: unknown workflow %q (want 1deg, 2deg or 4deg)", r.Workflow)
		}
	case r.Degrees < 0:
		return Spec{}, Plan{}, fmt.Errorf("repro: negative degrees %v", r.Degrees)
	case r.Degrees > maxRequestDegrees:
		return Spec{}, Plan{}, fmt.Errorf("repro: %v-degree mosaic exceeds the %v-degree request limit", r.Degrees, float64(maxRequestDegrees))
	case r.Degrees > 0:
		spec = FromDegrees(r.Degrees, int64(math.Round(r.Degrees)))
	default:
		return Spec{}, Plan{}, fmt.Errorf("repro: request selects no workflow (set workflow or degrees)")
	}

	plan := DefaultPlan()
	if r.Mode != "" {
		m, err := datamgmt.ParseMode(r.Mode)
		if err != nil {
			return Spec{}, Plan{}, err
		}
		plan.Mode = m
	}
	switch strings.ToLower(r.Billing) {
	case "", "on-demand", "ondemand":
		plan.Billing = OnDemand
	case "provisioned":
		plan.Billing = Provisioned
	default:
		return Spec{}, Plan{}, fmt.Errorf("repro: unknown billing %q (want provisioned or on-demand)", r.Billing)
	}
	if r.Processors < 0 {
		return Spec{}, Plan{}, fmt.Errorf("repro: negative processor count %d", r.Processors)
	}
	plan.Processors = r.Processors
	if r.BandwidthMbps < 0 {
		return Spec{}, Plan{}, fmt.Errorf("repro: negative bandwidth %v Mbps", r.BandwidthMbps)
	}
	if r.BandwidthMbps > 0 {
		plan.Bandwidth = units.Mbps(r.BandwidthMbps)
	}
	if r.Spot != nil {
		if err := r.Spot.apply(&plan); err != nil {
			return Spec{}, Plan{}, err
		}
	}
	return spec, plan.Canonical(), nil
}

// apply maps the wire spot knobs onto the plan, filling defaults.
func (s SpotRequest) apply(plan *Plan) error {
	switch {
	case s.RatePerHour < 0:
		return fmt.Errorf("repro: negative spot rate %v/hour", s.RatePerHour)
	case s.WarningSeconds < 0:
		return fmt.Errorf("repro: negative spot warning %v s", s.WarningSeconds)
	case s.DowntimeSeconds < 0:
		return fmt.Errorf("repro: negative spot downtime %v s", s.DowntimeSeconds)
	case s.Discount < 0 || s.Discount >= 1:
		return fmt.Errorf("repro: spot discount %v outside [0,1)", s.Discount)
	case s.OnDemandProcessors < 0:
		return fmt.Errorf("repro: negative on-demand sub-pool %d", s.OnDemandProcessors)
	case s.CheckpointSeconds < 0:
		return fmt.Errorf("repro: negative checkpoint interval %v s", s.CheckpointSeconds)
	case s.CheckpointOverheadSeconds < 0:
		return fmt.Errorf("repro: negative checkpoint overhead %v s", s.CheckpointOverheadSeconds)
	case s.CheckpointSeconds == 0 && s.CheckpointOverheadSeconds > 0:
		return fmt.Errorf("repro: checkpoint overhead set without an interval")
	case s == (SpotRequest{}):
		return fmt.Errorf("repro: empty spot request (set rate_per_hour, on_demand_processors or checkpoint_seconds)")
	}
	// With an explicit pool size the fleet split is decidable now; a
	// malformed split must cost the caller a 400, not a 500 at run time
	// (a zero pool defers to the run-time check, which knows the
	// workflow's full parallelism).
	if plan.Processors > 0 {
		if s.OnDemandProcessors > plan.Processors {
			return fmt.Errorf("repro: on-demand sub-pool %d exceeds the %d-processor fleet", s.OnDemandProcessors, plan.Processors)
		}
		if s.RatePerHour > 0 && s.OnDemandProcessors == plan.Processors {
			return fmt.Errorf("repro: spot reclaims enabled but the %d-processor fleet has no spot capacity", plan.Processors)
		}
	}
	warning := s.WarningSeconds
	downtime := s.DowntimeSeconds
	if s.RatePerHour > 0 {
		if warning == 0 {
			warning = defaultSpotWarningSeconds
		}
		if downtime == 0 {
			downtime = defaultSpotDowntimeSeconds
		}
	}
	plan.Spot = SpotPlan{
		RatePerHour: s.RatePerHour,
		Warning:     units.Duration(warning),
		Downtime:    units.Duration(downtime),
		Seed:        s.Seed,
		Discount:    s.Discount,
		OnDemand:    s.OnDemandProcessors,
	}
	if s.CheckpointSeconds > 0 {
		plan.Recovery = exec.Recovery{
			Checkpoint: true,
			Interval:   units.Duration(s.CheckpointSeconds),
			Overhead:   units.Duration(s.CheckpointOverheadSeconds),
		}
	}
	return nil
}

// PlanDocument is the wire form of the plan a run executed under.
type PlanDocument struct {
	Mode          string            `json:"mode"`
	Processors    int               `json:"processors"`
	Billing       string            `json:"billing"`
	BandwidthMbps float64           `json:"bandwidth_mbps"`
	Spot          *SpotPlanDocument `json:"spot,omitempty"`
}

// SpotPlanDocument is the wire form of the spot scenario a run executed
// under, echoed back so a caller can verify every knob round-tripped.
type SpotPlanDocument struct {
	RatePerHour               float64 `json:"rate_per_hour"`
	WarningSeconds            float64 `json:"warning_seconds"`
	DowntimeSeconds           float64 `json:"downtime_seconds"`
	Seed                      int64   `json:"seed"`
	Discount                  float64 `json:"discount"`
	OnDemandProcessors        int     `json:"on_demand_processors"`
	CheckpointSeconds         float64 `json:"checkpoint_seconds,omitempty"`
	CheckpointOverheadSeconds float64 `json:"checkpoint_overhead_seconds,omitempty"`
}

// RunDocument is the machine-readable result of one simulation: the
// document POST /v1/run returns and montagesim -json prints.
type RunDocument struct {
	Workflow string       `json:"workflow"`
	Tasks    int          `json:"tasks"`
	Plan     PlanDocument `json:"plan"`
	Metrics  Metrics      `json:"metrics"`
	Cost     Breakdown    `json:"cost"`
	Total    Money        `json:"total"`
}

// NewRunDocument builds the wire document for a finished run.
func NewRunDocument(res Result) RunDocument {
	p := res.Plan.Canonical()
	doc := RunDocument{
		Workflow: res.Metrics.Workflow,
		Tasks:    res.Metrics.TasksRun,
		Plan: PlanDocument{
			Mode:          p.Mode.String(),
			Processors:    p.Processors,
			Billing:       p.Billing.String(),
			BandwidthMbps: p.Bandwidth.BytesPerSecond() * 8 / 1e6,
		},
		Metrics: res.Metrics,
		Cost:    res.Cost,
		Total:   res.Cost.Total(),
	}
	if p.Spot.Enabled() || p.Recovery.Checkpoint {
		doc.Plan.Spot = &SpotPlanDocument{
			RatePerHour:               p.Spot.RatePerHour,
			WarningSeconds:            p.Spot.Warning.Seconds(),
			DowntimeSeconds:           p.Spot.Downtime.Seconds(),
			Seed:                      p.Spot.Seed,
			Discount:                  p.Spot.Discount,
			OnDemandProcessors:        p.Spot.OnDemand,
			CheckpointSeconds:         p.Recovery.Interval.Seconds(),
			CheckpointOverheadSeconds: p.Recovery.Overhead.Seconds(),
		}
	}
	return doc
}

// Encode renders the document in the canonical wire encoding:
// two-space-indented JSON with a trailing newline.  The server and
// montagesim -json both emit exactly this, so CLI output can be diffed
// byte for byte against API output.
func (d RunDocument) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CanonicalRunKey derives a stable cache key for a (spec, plan) pair.
// Simulations are deterministic functions of exactly these two values,
// so equal keys guarantee byte-identical result documents; the server's
// result cache and request coalescing both key on it.
//
// The encoding is explicit and field-by-field -- no reflective %#v,
// whose output silently collapses distinct values (and drifts across Go
// versions).  Every Plan field must appear here; the field-count guard
// in wire_test.go fails the build of any Plan change that forgets to
// extend the key.
func CanonicalRunKey(spec Spec, plan Plan) string {
	p := plan.Canonical()
	var b strings.Builder
	fmt.Fprintf(&b, "spec{name=%q deg=%g img=%d diff=%d cpu=%g mosaic=%d ccr=%g bw=%g seed=%d}",
		spec.Name, spec.Degrees, spec.Images, spec.Diffs, float64(spec.TotalCPU),
		int64(spec.MosaicBytes), spec.TargetCCR, spec.Bandwidth.BytesPerSecond(), spec.Seed)
	fmt.Fprintf(&b, "|plan{mode=%s procs=%d billing=%s bw=%g curve=%t vmstart=%g policy=%s failp=%g fails=%d",
		p.Mode, p.Processors, p.Billing, p.Bandwidth.BytesPerSecond(), p.RecordCurve,
		float64(p.VMStartup), p.Policy, p.FailureProb, p.FailureSeed)
	fmt.Fprintf(&b, " pricing{store=%g in=%g out=%g cpu=%g gran=%s}",
		float64(p.Pricing.StoragePerGBMonth), float64(p.Pricing.TransferInPerGB),
		float64(p.Pricing.TransferOutPerGB), float64(p.Pricing.CPUPerHour), p.Pricing.Granularity)
	b.WriteString(" outages[")
	for _, o := range p.Outages {
		fmt.Fprintf(&b, "(%g,%g)", float64(o.Start), float64(o.End))
	}
	b.WriteString("] preempt[")
	for _, pre := range p.Preemptions {
		fmt.Fprintf(&b, "(%g,%d,%g,%g)", float64(pre.Reclaim), pre.Processors, float64(pre.Warning), float64(pre.Restore))
	}
	fmt.Fprintf(&b, "] recovery{ckpt=%t iv=%g oh=%g}",
		p.Recovery.Checkpoint, float64(p.Recovery.Interval), float64(p.Recovery.Overhead))
	fmt.Fprintf(&b, " spot{rate=%g warn=%g down=%g seed=%d disc=%g ondemand=%d}}",
		p.Spot.RatePerHour, float64(p.Spot.Warning), float64(p.Spot.Downtime),
		p.Spot.Seed, p.Spot.Discount, p.Spot.OnDemand)
	return b.String()
}
