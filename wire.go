package repro

// This file is the wire layer of the facade: the JSON request and result
// documents a service (or a CLI talking to one) exchanges with the
// simulator, plus the canonical cache key that makes deterministic
// simulations cacheable.  cmd/reprosrv serves these documents over HTTP
// and cmd/montagesim -json emits the same document, so the two outputs
// can be diffed byte for byte.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/datamgmt"
	"repro/internal/units"
)

// RunRequest is the wire form of one simulation request: a workflow
// selector plus the plan knobs a caller may turn.  The zero value of
// every plan field reproduces the paper's baseline (regular mode, full
// parallelism, on-demand billing, 10 Mbps).
type RunRequest struct {
	// Workflow selects a preset: 1deg, 2deg or 4deg (the full
	// montage-Ndeg names are accepted too).  Empty selects a custom
	// mosaic via Degrees.
	Workflow string `json:"workflow,omitempty"`
	// Degrees sizes a custom mosaic when Workflow is empty.
	Degrees float64 `json:"degrees,omitempty"`

	// Mode is the data-management model: remote-io, regular or cleanup.
	Mode string `json:"mode,omitempty"`
	// Processors provisioned; 0 means enough for full parallelism.
	Processors int `json:"processors,omitempty"`
	// Billing is provisioned or on-demand.
	Billing string `json:"billing,omitempty"`
	// BandwidthMbps is the user<->cloud link speed; 0 means the paper's
	// 10 Mbps.
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
}

// maxRequestDegrees caps custom mosaic sizes on the wire.  Task count
// grows with sky area; the paper tops out at 4 degrees and the
// whole-sky tilings at 6, while an uncapped request could ask one cheap
// POST to materialize a multi-million-task DAG.
const maxRequestDegrees = 20

// Resolve turns the wire request into a concrete spec and plan,
// rejecting anything malformed.  The returned plan is canonical
// (defaults filled in), so equal requests resolve to equal values.
func (r RunRequest) Resolve() (Spec, Plan, error) {
	var spec Spec
	switch {
	case r.Workflow != "" && r.Degrees != 0:
		return Spec{}, Plan{}, fmt.Errorf("repro: request names workflow %q and degrees %v; use one", r.Workflow, r.Degrees)
	case r.Workflow != "":
		switch strings.ToLower(r.Workflow) {
		case "1deg", "montage-1deg":
			spec = OneDegree()
		case "2deg", "montage-2deg":
			spec = TwoDegree()
		case "4deg", "montage-4deg":
			spec = FourDegree()
		default:
			return Spec{}, Plan{}, fmt.Errorf("repro: unknown workflow %q (want 1deg, 2deg or 4deg)", r.Workflow)
		}
	case r.Degrees > maxRequestDegrees:
		return Spec{}, Plan{}, fmt.Errorf("repro: %v-degree mosaic exceeds the %v-degree request limit", r.Degrees, float64(maxRequestDegrees))
	case r.Degrees > 0:
		spec = FromDegrees(r.Degrees, int64(math.Round(r.Degrees)))
	default:
		return Spec{}, Plan{}, fmt.Errorf("repro: request selects no workflow (set workflow or degrees)")
	}

	plan := DefaultPlan()
	if r.Mode != "" {
		m, err := datamgmt.ParseMode(r.Mode)
		if err != nil {
			return Spec{}, Plan{}, err
		}
		plan.Mode = m
	}
	switch strings.ToLower(r.Billing) {
	case "", "on-demand", "ondemand":
		plan.Billing = OnDemand
	case "provisioned":
		plan.Billing = Provisioned
	default:
		return Spec{}, Plan{}, fmt.Errorf("repro: unknown billing %q (want provisioned or on-demand)", r.Billing)
	}
	if r.Processors < 0 {
		return Spec{}, Plan{}, fmt.Errorf("repro: negative processor count %d", r.Processors)
	}
	plan.Processors = r.Processors
	if r.BandwidthMbps < 0 {
		return Spec{}, Plan{}, fmt.Errorf("repro: negative bandwidth %v Mbps", r.BandwidthMbps)
	}
	if r.BandwidthMbps > 0 {
		plan.Bandwidth = units.Mbps(r.BandwidthMbps)
	}
	return spec, plan.Canonical(), nil
}

// PlanDocument is the wire form of the plan a run executed under.
type PlanDocument struct {
	Mode          string  `json:"mode"`
	Processors    int     `json:"processors"`
	Billing       string  `json:"billing"`
	BandwidthMbps float64 `json:"bandwidth_mbps"`
}

// RunDocument is the machine-readable result of one simulation: the
// document POST /v1/run returns and montagesim -json prints.
type RunDocument struct {
	Workflow string       `json:"workflow"`
	Tasks    int          `json:"tasks"`
	Plan     PlanDocument `json:"plan"`
	Metrics  Metrics      `json:"metrics"`
	Cost     Breakdown    `json:"cost"`
	Total    Money        `json:"total"`
}

// NewRunDocument builds the wire document for a finished run.
func NewRunDocument(res Result) RunDocument {
	p := res.Plan.Canonical()
	return RunDocument{
		Workflow: res.Metrics.Workflow,
		Tasks:    res.Metrics.TasksRun,
		Plan: PlanDocument{
			Mode:          p.Mode.String(),
			Processors:    p.Processors,
			Billing:       p.Billing.String(),
			BandwidthMbps: p.Bandwidth.BytesPerSecond() * 8 / 1e6,
		},
		Metrics: res.Metrics,
		Cost:    res.Cost,
		Total:   res.Cost.Total(),
	}
}

// Encode renders the document in the canonical wire encoding:
// two-space-indented JSON with a trailing newline.  The server and
// montagesim -json both emit exactly this, so CLI output can be diffed
// byte for byte against API output.
func (d RunDocument) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CanonicalRunKey derives a stable cache key for a (spec, plan) pair.
// Simulations are deterministic functions of exactly these two values,
// so equal keys guarantee byte-identical result documents; the server's
// result cache and request coalescing both key on it.
func CanonicalRunKey(spec Spec, plan Plan) string {
	return fmt.Sprintf("%#v|%#v", spec, plan.Canonical())
}
