// Tournament: rank scheduling and recovery policy bundles on one
// scenario.  Every decision point of the simulator -- reliable-slot
// placement, reclaim victim selection, checkpoint spacing, fleet
// sizing -- is a named policy from a registry; a bundle picks one per
// slot, and the tournament runs the same seeded spot scenario under
// each bundle and ranks them by cost, makespan and wasted CPU.  The
// zero bundle reproduces the paper's historical behavior exactly.
//
//	go run ./examples/tournament
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/wire"
)

func main() {
	// The registries enumerate every competitor each slot can field.
	fmt.Println("registered policies:")
	fmt.Printf("  placement:  %v\n", policy.Placements())
	fmt.Printf("  victim:     %v\n", policy.Victims())
	fmt.Printf("  checkpoint: %v\n", policy.Checkpoints())
	fmt.Printf("  sizing:     %v\n\n", policy.Sizings())

	// The default tournament: the canned arena (1-degree mosaic, 16
	// processors with a 4-slot reliable floor, a reclaiming spot market,
	// checkpoint/restart) under the default roster -- the historical
	// defaults plus every competitor, one slot varied at a time.
	// Exactly what montagesim -exp policy-tournament and
	// POST /v2/experiments/policy-tournament run.
	rows, err := experiments.Tournament(context.Background(),
		experiments.DefaultTournamentScenario(), experiments.DefaultTournamentBundles())
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := experiments.TournamentTable(rows)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// A head-to-head: the historical defaults against one hand-picked
	// challenger bundle, on a harsher market.
	base := experiments.DefaultTournamentScenario()
	base.Spot.RatePerHour = 2
	head, err := experiments.Tournament(context.Background(), base, []wire.PoliciesSection{
		{},
		{Placement: "heft", Victim: "cost-aware", Checkpoint: "adaptive", Sizing: "half"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, st := range experiments.RankTournament(head) {
		fmt.Printf("rank %d: bundle %d  $%.4f  %.0f s makespan  %.0f CPU-s wasted\n",
			st.Rank, st.Index, st.CostDollars, st.MakespanSeconds, st.WastedCPUSeconds)
	}
}
