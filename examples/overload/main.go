// Overload: the paper's first usage scenario -- "handle sporadic
// overloads of mosaic requests".  A Montage service owns a small local
// cluster; when a burst of requests would blow the turnaround target,
// the request manager provisions cloud resources per request and pays
// the simulator-measured price.  This example compares a month of
// operation with and without cloud bursting.
//
//	go run ./examples/overload
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/montage"
	"repro/internal/service"
	"repro/internal/units"
)

func main() {
	// The service accepts 1- and 2-degree mosaic requests.  Its local
	// cluster has 8 processors; cloud bursts get a 32-processor pool.
	cloudPlan := core.DefaultPlan()
	cloudPlan.Billing = core.Provisioned
	cloudPlan.Processors = 32

	var classes []service.Class
	for _, spec := range []repro.Spec{montage.OneDegree(), montage.TwoDegree()} {
		c, err := service.MeasureClass(spec, 8, cloudPlan)
		if err != nil {
			log.Fatal(err)
		}
		classes = append(classes, c)
		fmt.Printf("class %-14s local %-9v cloud %-9v for %v\n",
			c.Name, c.LocalTime, c.CloudTime, c.CloudCost)
	}

	// A month of requests: one every ~2 hours on average, with a 3-day
	// overload at 8x rate (a popular supernova, say).
	day := units.Duration(24 * units.SecondsPerHour)
	arrivals := service.Arrivals{
		Seed: 42, N: 600, MeanGap: 2 * units.Duration(units.SecondsPerHour), Classes: 2,
		BurstStart: 10 * day, BurstEnd: 13 * day, BurstRate: 8,
	}
	reqs, err := arrivals.Generate()
	if err != nil {
		log.Fatal(err)
	}

	sla := units.Duration(4 * units.SecondsPerHour)
	for _, cloudOn := range []bool{false, true} {
		_, stats, err := service.Simulate(classes, reqs, service.Config{SLA: sla, CloudEnabled: cloudOn})
		if err != nil {
			log.Fatal(err)
		}
		label := "local only "
		if cloudOn {
			label = "cloud burst"
		}
		fmt.Printf("\n%s: %d requests, %d local / %d cloud\n",
			label, stats.Requests, stats.LocalRuns, stats.CloudRuns)
		fmt.Printf("  turnaround mean %v, max %v; SLA(%v) violations %d\n",
			stats.MeanTurnaround, stats.MaxTurnaround, sla, stats.SLAViolations)
		fmt.Printf("  cloud spend %v\n", stats.CloudSpend)
	}
}
