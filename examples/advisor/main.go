// Advisor: turn a provisioning sweep into a decision.  The paper reads
// Fig. 6 by eye and recommends 16 processors for the 4-degree workflow;
// this example reproduces that call programmatically, then explores
// deadline- and budget-constrained choices and the multi-provider
// speculation from the paper's conclusions.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/units"
)

func main() {
	wf, err := repro.Generate(repro.FourDegree())
	if err != nil {
		log.Fatal(err)
	}
	points, err := repro.ProvisioningSweep(wf, repro.GeometricProcessors(), repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}
	opts := advisor.FromSweep(points)

	fmt.Println("Pareto frontier (cost vs turnaround):")
	for _, o := range advisor.ParetoFrontier(opts) {
		fmt.Printf("  %4d procs  %8s  %10s\n", o.Processors, o.Cost, o.Time)
	}

	rec, err := advisor.Recommend(opts, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithin 10%% of the cheapest: %d processors (%s, %s)\n",
		rec.Processors, rec.Cost, rec.Time)
	fmt.Println("(the paper's own reading of Fig. 6: 16 processors)")

	deadline := units.Duration(8 * units.SecondsPerHour)
	byDeadline, err := advisor.CheapestWithin(opts, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheapest under an 8-hour deadline: %d processors (%s)\n",
		byDeadline.Processors, byDeadline.Cost)

	budget := repro.Money(12)
	byBudget, err := advisor.FastestUnder(opts, budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fastest under a $12 budget: %d processors (%s)\n",
		byBudget.Processors, byBudget.Time)

	// Multi-provider future: same run, three fee schedules.
	cheapCompute := repro.Amazon2008()
	cheapCompute.CPUPerHour = 0.05
	cheapCompute.TransferOutPerGB = 0.30
	cheapStorage := repro.Amazon2008()
	cheapStorage.StoragePerGBMonth = 0.03
	cheapStorage.CPUPerHour = 0.14
	providers := []advisor.Provider{
		{Name: "amazon-2008", Pricing: repro.Amazon2008()},
		{Name: "compute-discounter", Pricing: cheapCompute},
		{Name: "storage-discounter", Pricing: cheapStorage},
	}
	res, err := repro.Run(wf, repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := advisor.RankProviders(providers, res.Metrics, core.OnDemand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe same 4-degree request priced by provider:")
	for _, pc := range ranked {
		fmt.Printf("  %-20s %s\n", pc.Provider.Name, pc.Cost.Total())
	}
}
