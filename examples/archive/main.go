// Archive economics: the paper's Question 2b.  Montage's input survey
// (2MASS) is 12 TB; holding it in S3 costs $1,800 every month but saves
// the transfer-in charge on every mosaic request.  This example measures
// a 2-degree request both ways and computes the break-even request rate.
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wf, err := repro.Generate(repro.TwoDegree())
	if err != nil {
		log.Fatal(err)
	}
	// One 2-degree mosaic request, inputs staged from the project's own
	// archive (regular data management, CPU billed per use).
	res, err := repro.Run(wf, repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}

	be, err := repro.ComputeBreakEven(repro.Amazon2008(), repro.TwoMASSArchiveBytes, res.Cost)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("keeping 2MASS (%v) in the cloud:\n", repro.TwoMASSArchiveBytes)
	fmt.Printf("  monthly storage       %v\n", be.MonthlyStorageCost)
	fmt.Printf("  one-time upload       %v\n", be.OneTimeUploadCost)
	fmt.Printf("per 2-degree mosaic request:\n")
	fmt.Printf("  inputs staged in      %v\n", be.CostPerRequestStaged)
	fmt.Printf("  inputs already there  %v\n", be.CostPerRequestArchived)
	fmt.Printf("  savings               %v\n", be.SavingsPerRequest)
	fmt.Printf("break-even: %.0f requests/month\n", be.RequestsPerMonth)
	fmt.Println("\nbelow that rate it is cheaper to stage data per request; a")
	fmt.Println("middle path is pre-staging just the popular regions of the sky.")
}
