// Flightrecorder: trace a preemption-heavy spot run with the flight
// recorder and render what the simulator saw.  The recorder is a pure
// observer -- attaching it never changes a run's metrics or cost -- and
// captures every dispatch, start, finish, spot revocation, victim kill,
// checkpoint, restore and restart as a deterministic event timeline.
//
// The program prints a digest of the timeline (event counts by kind and
// the recovery story of the first preempted task), the critical-path
// summary (the tasks that blocked the makespan longest), and writes
// trace.json, a Chrome trace-event file: open it at https://ui.perfetto.dev
// or chrome://tracing to scrub through the run lane by lane.
//
//	go run ./examples/flightrecorder
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/obs"
)

func main() {
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}

	// A mixed fleet in a hot spot market: 4 reliable processors, 12
	// revocable ones, seeded reclaims, periodic checkpoints.  Plenty of
	// preemptions for the recorder to narrate.
	plan := repro.DefaultPlan()
	plan.Processors = 16
	plan.Spot = repro.SpotPlan{
		RatePerHour: 1.5,
		Warning:     120,
		Downtime:    600,
		Seed:        7,
		Discount:    0.65,
		OnDemand:    4,
	}
	plan.Recovery = repro.Recovery{Checkpoint: true, Interval: 300, Overhead: 10}

	// Arm the recorder.  0 means the default event bound; a traced run
	// is byte-identical to an untraced one apart from the timeline.
	rec := obs.NewRecorder(0)
	plan.Recorder = rec

	res, err := repro.Run(wf, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: makespan %v, cost %s, %d preempted, %d checkpoints\n\n",
		res.Metrics.Makespan, res.Cost.Total(), res.Metrics.Preempted, res.Metrics.Checkpoints)

	// The timeline, by kind.
	counts := map[string]int{}
	for _, e := range rec.Events() {
		counts[e.Kind]++
	}
	fmt.Printf("timeline: %d events\n", rec.Len())
	for _, kind := range []string{
		obs.KindReady, obs.KindDispatch, obs.KindStart, obs.KindFinish,
		obs.KindTransfer, obs.KindRevoke, obs.KindVictim, obs.KindCheckpoint,
		obs.KindRestore, obs.KindRestart, obs.KindResize,
	} {
		if counts[kind] > 0 {
			fmt.Printf("  %-10s %5d\n", kind, counts[kind])
		}
	}

	// The recovery story of the first victim: revocation, kill,
	// emergency checkpoint, restart, restore, finish.
	var victim int = -1
	fmt.Println("\nfirst preemption, as the recorder saw it:")
	for _, e := range rec.Events() {
		if victim < 0 && e.Kind != obs.KindVictim && e.Kind != obs.KindRevoke {
			continue
		}
		switch {
		case victim < 0 && e.Kind == obs.KindRevoke:
			fmt.Printf("  t=%8.1fs  reclaim takes %d spot processor(s)\n", e.T, e.Procs)
		case victim < 0 && e.Kind == obs.KindVictim:
			victim = e.Task
			fmt.Printf("  t=%8.1fs  %s (task %d) killed, victim score %.3f\n", e.T, e.Name, e.Task, e.Score)
		case victim >= 0 && e.Task == victim:
			switch e.Kind {
			case obs.KindCheckpoint:
				fmt.Printf("  t=%8.1fs  %s checkpoint (%d write(s), %d bytes)\n", e.T, e.Detail, e.Count, e.Bytes)
			case obs.KindRestart:
				fmt.Printf("  t=%8.1fs  re-enters the ready queue\n", e.T)
			case obs.KindStart:
				fmt.Printf("  t=%8.1fs  restarts on the %s pool\n", e.T, e.Pool)
			case obs.KindRestore:
				fmt.Printf("  t=%8.1fs  resumes from banked progress\n", e.T)
			case obs.KindFinish:
				fmt.Printf("  t=%8.1fs  finishes\n", e.T)
			}
			if e.Kind == obs.KindFinish {
				victim = -2 // story told
			}
		}
		if victim == -2 {
			break
		}
	}

	// Where the time went: top tasks by blocking time.
	fmt.Println("\ncritical path (top 5 by blocking time):")
	for _, p := range obs.CriticalPath(rec.Events(), 5) {
		fmt.Printf("  %-28s %2d attempt(s)  busy %7.1fs  wait %7.1fs\n",
			fmt.Sprintf("%s (task %d)", p.Name, p.Task), p.Attempts, p.BusySeconds, p.WaitSeconds)
	}

	// And the whole run as a Chrome trace, one lane per processor slot.
	body, err := obs.ChromeTrace(rec.Events())
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("trace.json", body, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote trace.json -- open it at https://ui.perfetto.dev")
}
