// Spot: run the 1-degree mosaic on interruptible capacity.  Spot
// markets (introduced by Amazon in 2009, the year after the paper) sell
// the same processors at a deep discount in exchange for the right to
// reclaim them mid-run; this example injects a seeded revocation
// schedule, shows what an unprotected run loses to killed attempts,
// how checkpoint/restart claws it back, and what the advisor would buy.
//
//	go run ./examples/spot
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/experiments"
)

func main() {
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}

	// One spot market: 65% off CPU, 1.5 capacity reclaims per hour,
	// 2-minute warning, capacity back after 10 minutes of downtime.
	market := repro.Spot{Discount: 0.65, RevocationsPerHour: 1.5}
	sched, err := repro.SpotSchedule(4*3600, 8, market.RevocationsPerHour, 120, 600, 2009)
	if err != nil {
		log.Fatal(err)
	}
	if len(sched) == 0 {
		fmt.Println("sampled no revocations inside the horizon; try another seed")
	} else {
		fmt.Printf("sampled %d revocations; first at %v\n\n", len(sched), sched[0].Reclaim)
	}

	base := repro.DefaultPlan()
	base.Processors = 8
	onDemand, err := repro.Run(wf, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-demand: %v, %s\n", onDemand.Metrics.Makespan, onDemand.Cost.Total())

	for _, recovery := range []repro.Recovery{
		{}, // re-run preempted tasks from scratch
		{Checkpoint: true, Interval: 300, Overhead: 10},
	} {
		plan := base
		plan.Pricing = market.Apply(repro.Amazon2008())
		plan.Preemptions = sched
		plan.Recovery = recovery
		res, err := repro.Run(wf, plan)
		if err != nil {
			log.Fatal(err)
		}
		name := "spot, restart from scratch"
		if recovery.Checkpoint {
			name = fmt.Sprintf("spot, checkpoint every %v", recovery.Interval)
		}
		fmt.Printf("%s: %v, %s (%d preempted, %.0f CPU-s wasted, %d checkpoints)\n",
			name, res.Metrics.Makespan, res.Cost.Total(),
			res.Metrics.Preempted, res.Metrics.WastedCPUSeconds, res.Metrics.Checkpoints)
	}

	// The full frontier experiment, exactly as montagesim -exp
	// spot-frontier and GET /v1/experiments/spot-frontier serve it.
	frontier, err := experiments.SpotFrontier(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, tbl := range frontier.Tables() {
		if err := tbl.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
