// Whole sky: the paper's Question 3.  What would it cost to mosaic the
// entire sky on the cloud, and once a mosaic exists, for how long is
// storing it cheaper than recomputing it on demand?
//
//	go run ./examples/wholesky
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Price one 4-degree mosaic, then scale to the 3,900-plate tiling.
	wf, err := repro.Generate(repro.FourDegree())
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Run(wf, repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}
	sky, err := repro.ComputeSkyCampaign(res.Cost, repro.WholeSky4DegMosaics)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mosaic of the entire sky, 4-degree tiles:\n")
	fmt.Printf("  %d mosaics x %v = %v\n", sky.Mosaics, sky.CostPerMosaic, sky.TotalCost)
	fmt.Printf("  with inputs archived in the cloud: %v\n", sky.TotalCostArchived)

	// Store-vs-recompute horizons for all three mosaic sizes.
	fmt.Println("\nstore a popular mosaic or recompute it on demand?")
	for _, spec := range []repro.Spec{repro.OneDegree(), repro.TwoDegree(), repro.FourDegree()} {
		w, err := repro.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		r, err := repro.Run(w, repro.DefaultPlan())
		if err != nil {
			log.Fatal(err)
		}
		h, err := repro.ComputeStorageHorizon(repro.Amazon2008(), w.OutputBytes(), r.Cost.CPU)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %v mosaic, %v to recompute -> store for %.1f months\n",
			spec.Name, h.ProductBytes, h.RecomputeCost, h.Months)
	}
	fmt.Println("\nif a request recurs within ~2 years, storing wins: popular")
	fmt.Println("regions (Orion, say) belong in the cloud.")
}
