// CCR sensitivity: Montage is one point in the space of scientific
// workloads; the paper sweeps the communication-to-computation ratio to
// see how costs shift for more data-intensive applications (Fig. 11).
// This example rescales the 1-degree workflow's file sizes across two
// orders of magnitude of CCR and runs each variant on 8 provisioned
// processors.
//
//	go run ./examples/ccr
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}
	plan := repro.DefaultPlan()
	plan.Processors = 8
	plan.Billing = repro.Provisioned

	ccrs := []float64{0.053, 0.106, 0.212, 0.424, 0.848, 1.696, 3.392}
	points, err := repro.CCRSweep(wf, ccrs, plan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s  %10s  %10s  %10s  %10s\n", "ccr", "cpu", "transfer", "total", "time")
	for _, p := range points {
		c := p.Result.Cost
		fmt.Printf("%8.3f  %10s  %10s  %10s  %10s\n",
			p.CCR, c.CPU, c.Transfer(), c.Total(), p.Result.Metrics.ExecTime)
	}

	first, last := points[0], points[len(points)-1]
	growth := float64(last.Result.Cost.Total() / first.Result.Cost.Total())
	fmt.Printf("\n64x more data -> %.1fx the cost: as applications become more\n", growth)
	fmt.Println("data-intensive it pays to pre-store inputs in the cloud (the")
	fmt.Println("paper's segue into Question 2b).")
}
