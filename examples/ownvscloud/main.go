// Own vs cloud: the funding-model question of the paper's introduction.
// Should the Montage project buy a cluster or rent from Amazon?  This
// example measures the per-request cloud cost with the simulator, prices
// a 2008-era commodity cluster, and sweeps the request rate to find the
// crossover.
//
//	go run ./examples/ownvscloud
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/econ"
)

func main() {
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Run(wf, repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one 1-degree mosaic on the cloud: %v (%.1f CPU-hours)\n",
		res.Cost.Total(), res.Metrics.CPUSeconds/3600)

	cluster := econ.Commodity2008(10)
	fmt.Printf("10-processor cluster: %v/month all-in\n", cluster.MonthlyCost())

	fmt.Printf("\n%10s  %12s  %12s  %s\n", "req/month", "cloud", "cluster", "verdict")
	for _, rate := range []float64{50, 200, 500, 1000, 1400, 2000} {
		cmp, err := econ.Compare(cluster, res.Cost, res.Metrics.CPUSeconds, rate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f  %12s  %12s  %s\n",
			rate, cmp.CloudMonthly, cmp.ClusterMonthly, cmp.Verdict)
	}

	cmp, _ := econ.Compare(cluster, res.Cost, res.Metrics.CPUSeconds, 0)
	fmt.Printf("\nbreak-even at %.0f requests/month; cluster capacity %.0f requests/month\n",
		cmp.BreakEvenRequests, cmp.CapacityPerMonth)
	fmt.Println("at 2008 prices the cloud wins until the cluster is nearly")
	fmt.Println("saturated -- the economy-of-scale argument of the paper's intro.")
}
