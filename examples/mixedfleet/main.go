// Mixedfleet: run the 1-degree mosaic on a part-reliable, part-spot
// fleet.  The declarative SpotPlan samples seeded per-instance reclaims
// (heterogeneous warnings, per-instance downtime) over the revocable
// sub-pool only; the scheduler parks the critical-path tasks on the
// reliable processors, and the bill splits the CPU between the full and
// the discounted rate.  Utilization is reported against the capacity
// that was actually available, so the reclaim windows do not inflate it.
//
//	go run ./examples/mixedfleet
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/experiments"
)

func main() {
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}

	base := repro.DefaultPlan()
	base.Processors = 16
	onDemand, err := repro.Run(wf, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all on-demand: %v, %s, utilization %.3f\n",
		onDemand.Metrics.Makespan, onDemand.Cost.Total(), onDemand.Metrics.Utilization)

	// Sweep the fleet split: 0 reliable processors (all spot) up to 12.
	for _, reliable := range []int{0, 4, 8, 12} {
		plan := base
		plan.Spot = repro.SpotPlan{
			RatePerHour: 1.5, // per-instance Poisson reclaims
			Warning:     120,
			Downtime:    600,
			Seed:        2010,
			Discount:    0.65,
			OnDemand:    reliable,
		}
		plan.Recovery = repro.Recovery{Checkpoint: true, Interval: 300, Overhead: 10}
		res, err := repro.Run(wf, plan)
		if err != nil {
			log.Fatal(err)
		}
		m := res.Metrics
		fmt.Printf("%2d reliable + %2d spot: %v, %s (%d preempted, %.0f CPU-s wasted, utilization %.3f)\n",
			reliable, m.Processors-reliable, m.Makespan, res.Cost.Total(),
			m.Preempted, m.WastedCPUSeconds, m.Utilization)
	}

	// The registered frontier, exactly as montagesim -exp mixed-fleet
	// and GET /v1/experiments/mixed-fleet serve it.
	frontier, err := experiments.MixedFleet(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, tbl := range frontier.Tables() {
		if err := tbl.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
