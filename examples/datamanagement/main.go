// Data management: the paper's Question 2a.  When the application relies
// on the cloud for all computing and pays CPU per use, the data-handling
// strategy drives the remaining cost.  This example compares the three
// models of §3 -- remote I/O, regular, and dynamic cleanup -- on the
// 1-degree workflow, reproducing the panels of Fig. 7.
//
//	go run ./examples/datamanagement
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}
	results, err := repro.CompareModes(wf, repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}

	modes := []repro.Mode{repro.RemoteIO, repro.Regular, repro.Cleanup}

	fmt.Println("storage used (space-time):")
	for _, m := range modes {
		r := results[m]
		fmt.Printf("  %-10s %8.4f GB-hours (peak %v)\n",
			m, r.Metrics.GBHoursStorage(), r.Metrics.PeakStorage)
	}

	fmt.Println("data transferred:")
	for _, m := range modes {
		r := results[m]
		fmt.Printf("  %-10s in %v, out %v\n", m, r.Metrics.BytesIn, r.Metrics.BytesOut)
	}

	fmt.Println("costs (CPU is mode-invariant):")
	for _, m := range modes {
		c := results[m].Cost
		fmt.Printf("  %-10s cpu %v + dm %v = %v\n", m, c.CPU, c.DataManagement(), c.Total())
	}

	cheapest := modes[0]
	for _, m := range modes[1:] {
		if results[m].Cost.Total() < results[cheapest].Cost.Total() {
			cheapest = m
		}
	}
	fmt.Printf("cheapest mode: %v (the paper's conclusion: cleanup)\n", cheapest)
}
