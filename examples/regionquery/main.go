// Region query: the full service path of the paper's Figure 2.  A user
// asks for a mosaic of a named sky region (M17, the region the paper's
// own workflows target); the service queries the 2MASS-like archive for
// the covering plates, generates the Montage workflow, simulates it on
// the cloud and prices the request.
//
//	go run ./examples/regionquery
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/skycat"
)

func main() {
	catalog := skycat.New2MASS()
	fmt.Printf("archive: %d plates/band, %v total (paper: 12 TB)\n",
		catalog.PlateCount(), catalog.TotalBytes())

	// M17 (the Omega Nebula): RA 275.2, Dec -16.2.
	regions := []struct {
		name    string
		ra, dec float64
		size    float64
		band    skycat.Band
	}{
		{"m17", 275.2, -16.2, 1, skycat.K},
		{"m17-wide", 275.2, -16.2, 2, skycat.K},
		{"polaris", 37.9, 89.3, 1, skycat.J},
	}
	for _, r := range regions {
		spec, plates, err := catalog.SpecForRegion(r.name, r.ra, r.dec, r.size, r.band, 1)
		if err != nil {
			log.Fatal(err)
		}
		wf, err := repro.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := repro.Run(wf, repro.DefaultPlan())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %.3g deg in %v at (%.1f, %.1f)\n", r.name, r.size, r.band, r.ra, r.dec)
		fmt.Printf("  %d plates -> %d tasks, %.1f CPU-hours\n",
			len(plates), wf.NumTasks(), wf.TotalRuntime().Hours())
		fmt.Printf("  mosaic %v in %v for %v\n",
			wf.OutputBytes(), res.Metrics.Makespan, res.Cost.Total())
	}
}
