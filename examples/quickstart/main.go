// Quickstart: build the paper's 1-degree Montage workflow, run it on the
// simulated cloud under the default plan, and print what the mosaic
// costs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The 203-task workflow for a 1-degree-square mosaic of M17,
	// calibrated to the paper's published aggregates.
	wf, err := repro.Generate(repro.OneDegree())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %s: %d tasks, %d files, %.1f CPU-hours, CCR %.3f\n",
		wf.Name, wf.NumTasks(), wf.NumFiles(),
		wf.TotalRuntime().Hours(), wf.CCR(repro.Mbps(10)))

	// Run it with the paper's baseline plan: regular data management,
	// enough processors for full parallelism, on-demand billing, 10 Mbps
	// to the cloud, 2008 Amazon rates.
	res, err := repro.Run(wf, repro.DefaultPlan())
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("executed in %v (makespan %v) on %d processors\n",
		m.ExecTime, m.Makespan, m.Processors)
	fmt.Printf("moved %v in, %v out; storage integral %.4f GB-hours\n",
		m.BytesIn, m.BytesOut, m.GBHoursStorage())
	fmt.Printf("cost: CPU %v + storage %v + transfer %v = %v\n",
		res.Cost.CPU, res.Cost.Storage, res.Cost.Transfer(), res.Cost.Total())
}
