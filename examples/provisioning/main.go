// Provisioning: the paper's Question 1.  An application occasionally
// farms mosaic requests out to the cloud and must pick a pool size: few
// processors are cheap but slow, many are fast but expensive because the
// whole pool is billed for the whole run.  This example sweeps pool
// sizes for each of the three Montage workflows and prints the
// cost/performance frontier of Figs. 4-6.
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	for _, spec := range []repro.Spec{repro.OneDegree(), repro.TwoDegree(), repro.FourDegree()} {
		wf, err := repro.Generate(spec)
		if err != nil {
			log.Fatal(err)
		}
		points, err := repro.ProvisioningSweep(wf, repro.GeometricProcessors(), repro.DefaultPlan())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d tasks)\n", spec.Name, wf.NumTasks())
		fmt.Printf("%6s  %10s  %10s\n", "procs", "total cost", "exec time")
		for _, p := range points {
			fmt.Printf("%6d  %10s  %10s\n",
				p.Processors, p.Result.Cost.Total(), p.Result.Metrics.ExecTime)
		}
		// The paper's compromise reading of Fig. 6: a mid-sized pool buys
		// most of the speedup for little extra money.
		best := pickCompromise(points)
		fmt.Printf("compromise: %d processors -> %s in %s\n",
			best.Processors, best.Result.Cost.Total(), best.Result.Metrics.ExecTime)
	}
}

// pickCompromise returns the smallest pool within 15% of the minimum
// cost that is at least 4x faster than the single-processor run.
func pickCompromise(points []repro.SweepPoint) repro.SweepPoint {
	minCost := points[0].Result.Cost.Total()
	for _, p := range points {
		if c := p.Result.Cost.Total(); c < minCost {
			minCost = c
		}
	}
	base := points[0].Result.Metrics.ExecTime
	for _, p := range points {
		fastEnough := p.Result.Metrics.ExecTime <= base/4
		cheapEnough := p.Result.Cost.Total() <= minCost*1.15
		if fastEnough && cheapEnough {
			return p
		}
	}
	return points[len(points)-1]
}
