package repro

// One benchmark per table and figure of the paper's evaluation.  Each
// bench regenerates the artifact via internal/experiments, prints the
// reproduced rows once (the same rows/series the paper reports), and
// exposes the headline numbers as custom benchmark metrics so regression
// runs can track them.
//
// Run with:  go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/montage"
	"repro/internal/report"
)

var printOnce sync.Map // figure name -> *sync.Once

func printTables(name string, tables ...*report.Table) {
	v, _ := printOnce.LoadOrStore(name, new(sync.Once))
	v.(*sync.Once).Do(func() {
		for _, t := range tables {
			fmt.Fprintln(os.Stdout)
			if err := t.WriteText(os.Stdout); err != nil {
				panic(err)
			}
		}
	})
}

// BenchmarkTableCCR regenerates the §6.3 CCR table (E1).
func BenchmarkTableCCR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CCRTable(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ccr", res.Table())
			b.ReportMetric(res.Rows[0].CCR, "ccr-1deg")
			b.ReportMetric(res.Rows[2].CCR, "ccr-4deg")
		}
	}
}

func benchProvisioning(b *testing.B, name string, fn func(context.Context) (experiments.ProvisioningFigure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := fn(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(name, f.CostTable(), f.TimeTable())
			first, last := f.Points[0], f.Points[len(f.Points)-1]
			b.ReportMetric(first.Result.Cost.Total().Dollars(), "total$-1proc")
			b.ReportMetric(last.Result.Cost.Total().Dollars(), "total$-128proc")
			b.ReportMetric(first.Result.Metrics.ExecTime.Hours(), "hours-1proc")
			b.ReportMetric(last.Result.Metrics.ExecTime.Hours(), "hours-128proc")
		}
	}
}

// BenchmarkFig4 regenerates the 1-degree provisioning sweep (E2).
func BenchmarkFig4(b *testing.B) { benchProvisioning(b, "fig4", experiments.Fig4) }

// BenchmarkFig5 regenerates the 2-degree provisioning sweep (E3).
func BenchmarkFig5(b *testing.B) { benchProvisioning(b, "fig5", experiments.Fig5) }

// BenchmarkFig6 regenerates the 4-degree provisioning sweep (E4).
func BenchmarkFig6(b *testing.B) { benchProvisioning(b, "fig6", experiments.Fig6) }

func benchDataManagement(b *testing.B, name string, fn func(context.Context) (experiments.DataManagementFigure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := fn(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables(name, f.StorageTable(), f.TransferTable(), f.CostTable())
			b.ReportMetric(f.Results[RemoteIO].Cost.DataManagement().Dollars(), "dm$-remote")
			b.ReportMetric(f.Results[Regular].Cost.DataManagement().Dollars(), "dm$-regular")
			b.ReportMetric(f.Results[Cleanup].Cost.DataManagement().Dollars(), "dm$-cleanup")
		}
	}
}

// BenchmarkFig7 regenerates the 1-degree data-management comparison (E5).
func BenchmarkFig7(b *testing.B) { benchDataManagement(b, "fig7", experiments.Fig7) }

// BenchmarkFig8 regenerates the 2-degree comparison (E6).
func BenchmarkFig8(b *testing.B) { benchDataManagement(b, "fig8", experiments.Fig8) }

// BenchmarkFig9 regenerates the 4-degree comparison (E7).
func BenchmarkFig9(b *testing.B) { benchDataManagement(b, "fig9", experiments.Fig9) }

// BenchmarkFig10 regenerates the CPU-vs-DM cost summary (E8).
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("fig10", res.Table())
			b.ReportMetric(res.Rows[0].CPUCost.Dollars(), "cpu$-1deg")
			b.ReportMetric(res.Rows[2].CPUCost.Dollars(), "cpu$-4deg")
			b.ReportMetric(res.Rows[2].Total[Regular].Dollars(), "total$-4deg-regular")
		}
	}
}

// BenchmarkFig11 regenerates the CCR sensitivity sweep (E9).
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("fig11", res.Table())
			first, last := res.Points[0], res.Points[len(res.Points)-1]
			b.ReportMetric(first.Result.Cost.Total().Dollars(), "total$-ccr-base")
			b.ReportMetric(last.Result.Cost.Total().Dollars(), "total$-ccr-max")
		}
	}
}

// BenchmarkQ2bArchive regenerates the archive break-even analysis (E10).
func BenchmarkQ2bArchive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Q2b(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("q2b", res.Table())
			b.ReportMetric(res.BreakEven.MonthlyStorageCost.Dollars(), "archive$/month")
			b.ReportMetric(res.BreakEven.RequestsPerMonth, "breakeven-req/month")
		}
	}
}

// BenchmarkQ3WholeSky regenerates the whole-sky campaign costing (E11).
func BenchmarkQ3WholeSky(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Q3WholeSky(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("q3sky", res.Table())
			b.ReportMetric(res.FourDeg.TotalCost.Dollars(), "wholesky$-4deg")
			b.ReportMetric(res.SixDeg.TotalCost.Dollars(), "wholesky$-6deg")
		}
	}
}

// BenchmarkQ3StoreVsRecompute regenerates the storage horizons (E12).
func BenchmarkQ3StoreVsRecompute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Q3Store(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("q3store", res.Table())
			b.ReportMetric(res.Rows[0].Horizon.Months, "months-1deg")
			b.ReportMetric(res.Rows[2].Horizon.Months, "months-4deg")
		}
	}
}

// BenchmarkAblationGranularity probes per-hour vs per-second billing.
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationGranularity(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-granularity", res.Table())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.PerHour.Dollars()/last.PerSecond.Dollars(), "hourly/second-128proc")
		}
	}
}

// BenchmarkAblationPlanComparison probes provisioned vs on-demand
// charging (the paper's $13.92-vs-$8.89 example).
func BenchmarkAblationPlanComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPlanComparison(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-plan", res.Table())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Provisioned.Dollars(), "provisioned$-4deg")
			b.ReportMetric(last.OnDemand.Dollars(), "ondemand$-4deg")
		}
	}
}

// BenchmarkAblationVMStartup probes the §8 VM-boot cost extension.
func BenchmarkAblationVMStartup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationVMStartup(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-startup", res.Table())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Total.Dollars(), "total$-15min-boot")
		}
	}
}

// BenchmarkAblationOutage probes the §8 storage-availability extension.
func BenchmarkAblationOutage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationOutage(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-outage", res.Table())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.Makespan.Hours(), "hours-2h-outage")
		}
	}
}

// BenchmarkAblationScheduler probes list-scheduler ready-queue policies.
func BenchmarkAblationScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationScheduler(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-scheduler", res.Table())
		}
	}
}

// BenchmarkAblationClustering probes Pegasus-style task clustering.
func BenchmarkAblationClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationClustering(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-clustering", res.Table())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.PerSecond.Dollars(), "total$-factor16")
		}
	}
}

// BenchmarkAblationReliability probes the §8 task-failure extension.
func BenchmarkAblationReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationReliability(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("ablation-reliability", res.Table())
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(float64(last.Retries), "retries-p25")
		}
	}
}

// BenchmarkOverloadScenario regenerates the introduction's cloud-bursting
// scenario.
func BenchmarkOverloadScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Overload(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTables("overload", res.Table())
			b.ReportMetric(res.With.CloudSpend.Dollars(), "cloud-spend$")
			b.ReportMetric(float64(res.With.SLAViolations), "sla-violations")
		}
	}
}

// BenchmarkSimulatorThroughput measures the raw simulator: one 1-degree
// regular-mode run per iteration (micro-benchmark for the engine).
func BenchmarkSimulatorThroughput(b *testing.B) {
	wf, err := Generate(OneDegree())
	if err != nil {
		b.Fatal(err)
	}
	plan := DefaultPlan()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(wf, plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate4Degree measures workload generation at the largest
// preset (3,027 tasks).
func BenchmarkGenerate4Degree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(FourDegree()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSweepWorkers runs the Question-1 grid of the 1-degree workflow
// (regular + cleanup run per pool size) through the sweep engine with a
// fixed worker count.  Comparing the two benchmarks below measures the
// wall-time win of the parallel sweep over the serial reference path.
func benchSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	wf, err := montage.Cached(montage.OneDegree())
	if err != nil {
		b.Fatal(err)
	}
	plan := DefaultPlan()
	s := experiments.Sweep[int, core.SweepPoint]{
		Name:    "bench-provisioning",
		Points:  GeometricProcessors(),
		Workers: workers,
		Run: func(ctx context.Context, n int) (core.SweepPoint, error) {
			points, err := core.ProvisioningSweepContext(ctx, wf, []int{n}, plan)
			if err != nil {
				return core.SweepPoint{}, err
			}
			return points[0], nil
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Do(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial is the serial reference: one worker walks the
// grid exactly like the seed's loop did.
func BenchmarkSweepSerial(b *testing.B) { benchSweepWorkers(b, 1) }

// BenchmarkSweepParallel is the same grid on a GOMAXPROCS-sized pool;
// results are byte-identical to the serial run (see the determinism
// test), only the wall-time changes.
func BenchmarkSweepParallel(b *testing.B) { benchSweepWorkers(b, 0) }
